//! F15 — durable ingest: the crash-point matrix and the recovery-cost sweep;
//! backs the `fig_recovery` binary and `BENCH_recovery.json`.
//!
//! Two halves:
//!
//! * **Crash matrix** — one scenario per way an ingest pipeline can die: a
//!   process kill in each durability mode, a fault-injected crash at each of
//!   the three crash points inside the write path (before the journal append,
//!   after it, after the in-memory apply), a torn journal append, a corrupt
//!   journal record, and a simulated power loss in each durability mode
//!   (`wal.fscw` truncated to its fsynced boundary, the bytes the page cache
//!   would have eaten).  Every scenario counts the batches the server actually
//!   *acknowledged*, restarts over the same data dir, and checks the recovered
//!   tenant against a registry twin fed exactly the recovered prefix — then
//!   replays the lost tail and checks the full twin.  The headline law: in
//!   [`Durability::AckAfterDurable`] mode, **every** crash point recovers with
//!   zero acked-batch loss; in the relaxed default, loss is bounded by the
//!   group-commit window and only under power loss.
//!
//! * **Cadence sweep** — every engine-capable registry algorithm × checkpoint
//!   cadence, in durable mode: ingest with a checkpoint every `cadence`
//!   batches (leaving an uncheckpointed journal tail), kill the server, time
//!   the restart, and record recovery time, replayed batches, and durable
//!   bytes per item (checkpoint files + lifetime journal appends).  The
//!   paper's thesis priced in durability terms: algorithms with few state
//!   changes write small deltas, so at equal cadence their durable-byte bill
//!   is a fraction of a write-heavy baseline's.
//!
//! Recovery-time numbers from loaded CI containers measure scheduling; the
//! recorded full-scale numbers come from an unloaded host.  The zero-loss and
//! equality checks are load-independent.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use fsc_engine::{DynEngine, EngineConfig};
use fsc_serve::faults::splitmix64;
use fsc_serve::wal::WAL_HEADER;
use fsc_serve::{
    Client, ClientConfig, CrashPoint, Durability, FaultPlan, Server, ServerConfig, ServerHandle,
    TenantOutcome,
};
use fsc_state::{Answer, Query};

use crate::registry::{engine_specs, serve_factory};
use crate::table::{f, Table};
use crate::Scale;

/// Algorithm the crash matrix runs (engine-capable, exact merge, so served
/// tenant and local oracle are twins).
const ALGORITHM: &str = "count_min";
/// Shards per tenant engine.
const SHARDS: u32 = 2;
/// Item universe of the workload.
const UNIVERSE: u64 = 1 << 10;
/// Items per batch.
const BATCH: usize = 128;
/// Workload seed shared by scenarios and their oracles.
const SEED: u64 = 0xF15_5EED;
/// Batches every crash scenario ingests (or tries to).
const MATRIX_BATCHES: usize = 8;
/// The one checkpoint in the crash matrix runs after this many batches.
const CHECKPOINT_AFTER: usize = 3;
/// The fault-injected scenarios arm the nth ingest / journal append — the
/// sixth, i.e. sequence number 5, two acked batches past the checkpoint.
const CRASH_NTH: u64 = 6;
/// Group-commit window of the relaxed-durability scenarios.
const GROUP_COMMIT: u64 = 4;
/// On-disk bytes of one journal record holding a [`BATCH`]-item batch
/// (`len | seq | checksum` framing plus the items).
const RECORD_BYTES: u64 = 20 + 8 * BATCH as u64;

// --- shared helpers -----------------------------------------------------------

/// A scratch data dir under the system temp dir, wiped before use.
fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fsc-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The deterministic workload: `n` batches of [`BATCH`] items.
fn workload(n: usize) -> Vec<Vec<u64>> {
    let mut rng = SEED;
    (0..n)
        .map(|_| {
            (0..BATCH)
                .map(|_| splitmix64(&mut rng) % UNIVERSE)
                .collect()
        })
        .collect()
}

/// Candidate probe queries; each check keeps the subset its twin answers.
fn candidate_probes() -> Vec<Query> {
    let mut out: Vec<Query> = (0..24).map(Query::Point).collect();
    out.push(Query::Moment);
    out
}

/// The registry twin: same constructor table and config the server uses, fed
/// `batches` directly.
fn twin(algorithm: &str, batches: &[Vec<u64>]) -> Box<dyn DynEngine> {
    let factory = serve_factory();
    let config = EngineConfig {
        shards: SHARDS as usize,
        ..EngineConfig::default()
    };
    let mut engine = factory(algorithm, config).expect("registry builds the algorithm");
    for batch in batches {
        engine.ingest(batch);
    }
    engine
}

/// The probes `engine` can answer, with its answers (the oracle side).
fn twin_answers(engine: &dyn DynEngine) -> Vec<(Query, Answer)> {
    candidate_probes()
        .into_iter()
        .filter_map(|q| engine.query_fresh(&q).ok().map(|a| (q, a)))
        .collect()
}

/// Asks the served tenant the oracle's probes and compares answers exactly.
fn served_matches(
    client: &mut Client,
    tenant: &str,
    oracle: &[(Query, Answer)],
) -> Result<bool, String> {
    if oracle.is_empty() {
        return Err("oracle answered no probes".into());
    }
    for (q, expected) in oracle {
        let got = client
            .query(tenant, *q)
            .map_err(|e| format!("querying {tenant}: {e}"))?;
        if got != *expected {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Starts a server over `dir` with the given fault plan and durability mode.
fn start_server(
    dir: &Path,
    faults: Arc<FaultPlan>,
    durability: Durability,
) -> (ServerHandle, fsc_serve::RecoveryReport) {
    let config = ServerConfig {
        faults,
        ..ServerConfig::new(dir)
    }
    .with_durability(durability)
    .with_group_commit(GROUP_COMMIT)
    .with_max_inflight_ingest(64);
    Server::start("127.0.0.1:0", config, serve_factory()).expect("bind ephemeral port")
}

/// Reads the recovered `(next_seq, wal_replayed, wal_truncated_bytes)` for
/// `tenant` out of a startup report.
fn recovered(report: &fsc_serve::RecoveryReport, tenant: &str) -> Option<(u64, u64, u64)> {
    report.tenants.iter().find_map(|t| {
        if t.tenant != tenant {
            return None;
        }
        match t.outcome {
            TenantOutcome::Recovered {
                next_seq,
                wal_replayed,
                wal_truncated_bytes,
                ..
            } => Some((next_seq, wal_replayed, wal_truncated_bytes)),
            TenantOutcome::Failed { .. } => None,
        }
    })
}

// --- crash matrix -------------------------------------------------------------

/// One crash scenario's outcome.
#[derive(Debug, Clone)]
pub struct CrashRow {
    /// Scenario name.
    pub scenario: &'static str,
    /// Durability mode the server ran under.
    pub durability: &'static str,
    /// Batches the server acknowledged before dying.
    pub acked: u64,
    /// `next_seq` after restart: the batches the recovered tenant holds.
    pub recovered_next_seq: u64,
    /// Acked batches the restart did *not* hold (`acked - recovered`, floored
    /// at zero — recovery may legitimately hold unacked journaled batches).
    pub acked_lost: u64,
    /// Journal batches replayed past the chain tip during recovery.
    pub replayed: u64,
    /// Bytes of damaged journal tail truncated at the last valid record.
    pub truncated_bytes: u64,
    /// Whether the restarted tenant matched a registry twin fed exactly
    /// `recovered_next_seq` batches.
    pub exact_at_recovery: bool,
    /// Whether replaying the lost tail (if any) converged to the full twin,
    /// with duplicate re-sends refused.
    pub converged: bool,
    /// One-line account of what happened.
    pub detail: String,
}

impl CrashRow {
    /// The headline predicate: no acknowledged batch went missing.
    pub fn zero_acked_loss(&self) -> bool {
        self.acked_lost == 0
    }
}

/// The server-side fault a scenario injects, if any.
#[derive(Clone, Copy)]
enum Inject {
    /// No injected fault: the run completes, then the server is killed.
    Kill,
    /// The nth ingest dies at a crash point inside the write path.
    CrashAt(CrashPoint),
    /// The nth journal append is torn mid-write (the server dies with it).
    TornWal,
    /// One byte of the nth journal record is flipped after it lands: latent
    /// media damage — the server keeps running and acking.
    CorruptWal,
}

struct Scenario {
    name: &'static str,
    durability: Durability,
    inject: Inject,
    /// Simulate power loss after the kill: truncate `wal.fscw` to its fsynced
    /// boundary, discarding what only the page cache held.
    power_cut: bool,
}

fn scenarios() -> Vec<Scenario> {
    use Durability::{AckAfterApply, AckAfterDurable};
    vec![
        Scenario {
            name: "process_kill_durable",
            durability: AckAfterDurable,
            inject: Inject::Kill,
            power_cut: false,
        },
        Scenario {
            name: "process_kill_relaxed",
            durability: AckAfterApply,
            inject: Inject::Kill,
            power_cut: false,
        },
        Scenario {
            name: "crash_before_journal_durable",
            durability: AckAfterDurable,
            inject: Inject::CrashAt(CrashPoint::BeforeJournal),
            power_cut: false,
        },
        Scenario {
            name: "crash_after_journal_durable",
            durability: AckAfterDurable,
            inject: Inject::CrashAt(CrashPoint::AfterJournal),
            power_cut: false,
        },
        Scenario {
            name: "crash_after_apply_durable",
            durability: AckAfterDurable,
            inject: Inject::CrashAt(CrashPoint::AfterApply),
            power_cut: false,
        },
        Scenario {
            name: "torn_wal_append_durable",
            durability: AckAfterDurable,
            inject: Inject::TornWal,
            power_cut: false,
        },
        Scenario {
            name: "corrupt_wal_record_durable",
            durability: AckAfterDurable,
            inject: Inject::CorruptWal,
            power_cut: false,
        },
        Scenario {
            name: "power_loss_durable",
            durability: AckAfterDurable,
            inject: Inject::Kill,
            power_cut: true,
        },
        Scenario {
            name: "power_loss_relaxed",
            durability: AckAfterApply,
            inject: Inject::Kill,
            power_cut: true,
        },
    ]
}

/// Truncates the tenant's journal to its fsynced boundary — what the disk
/// still holds after the power comes back.  Returns the bytes discarded.
fn cut_power(dir: &Path, tenant: &str, synced_records: u64) -> Result<u64, String> {
    let path = fsc_serve::wal::wal_path(&dir.join(tenant));
    let keep = WAL_HEADER + synced_records * RECORD_BYTES;
    let len = std::fs::metadata(&path)
        .map_err(|e| format!("stat {path:?}: {e}"))?
        .len();
    if len < keep {
        return Err(format!(
            "journal shorter than its synced boundary: {len} < {keep}"
        ));
    }
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&path)
        .map_err(|e| format!("open {path:?}: {e}"))?;
    file.set_len(keep).map_err(|e| format!("truncate: {e}"))?;
    Ok(len - keep)
}

/// Runs one crash scenario end to end.
fn drill(index: u64, s: &Scenario) -> CrashRow {
    let dir = fresh_dir(s.name);
    let batches = workload(MATRIX_BATCHES);
    let mut plan = FaultPlan::seeded(SEED ^ index).with_crash_frame();
    plan = match s.inject {
        Inject::Kill => plan,
        Inject::CrashAt(point) => plan.with_crash_at(point, CRASH_NTH),
        Inject::TornWal => plan.with_torn_wal_append(CRASH_NTH),
        Inject::CorruptWal => plan.with_corrupt_wal_record(CRASH_NTH),
    };
    let (server, _) = start_server(&dir, Arc::new(plan), s.durability);
    // No retries: a fault-driven crash must surface as the failed ingest it
    // is, not be masked (or worse, re-attempted) by the retry loop.  The long
    // timeout keeps a loaded machine from faking an early death.
    let mut c = Client::new(
        server.addr(),
        ClientConfig {
            retries: 0,
            timeout: std::time::Duration::from_secs(10),
            ..ClientConfig::default()
        },
    );

    let mut detail = String::new();
    let mut acked = 0u64;
    let setup = c
        .create_tenant("t0", ALGORITHM, SHARDS)
        .map_err(|e| detail = format!("create: {e}"));
    if setup.is_ok() {
        for (seq, batch) in batches.iter().enumerate() {
            match c.ingest("t0", seq as u64, batch) {
                Ok(_) => acked += 1,
                Err(e) => {
                    detail = format!("seq {seq} died as armed: {e}");
                    break;
                }
            }
            if seq + 1 == CHECKPOINT_AFTER {
                if let Err(e) = c.checkpoint("t0") {
                    detail = format!("checkpoint: {e}");
                    break;
                }
            }
        }
    }
    if !server.stopped() {
        c.crash();
    }
    server.join();

    let mut cut = Ok(0u64);
    if s.power_cut {
        // Appends since the checkpoint truncated the journal; in durable mode
        // all of them are fsynced, in relaxed mode only whole group-commit
        // windows are.
        let appends = MATRIX_BATCHES as u64 - CHECKPOINT_AFTER as u64;
        let synced = match s.durability {
            Durability::AckAfterDurable => appends,
            Durability::AckAfterApply => appends - appends % GROUP_COMMIT,
        };
        cut = cut_power(&dir, "t0", synced);
    }

    let (server, report) = start_server(&dir, Arc::new(FaultPlan::none()), s.durability);
    let outcome = recovered(&report, "t0");
    let (next_seq, replayed, truncated_bytes) = outcome.unwrap_or((0, 0, 0));
    let acked_lost = acked.saturating_sub(next_seq);

    let mut c = Client::new(server.addr(), ClientConfig::default());
    let mut verify = || -> Result<(bool, bool), String> {
        if outcome.is_none() {
            return Err("tenant failed to recover".into());
        }
        let cut = cut.clone()?;
        let oracle = twin_answers(twin(ALGORITHM, &batches[..next_seq as usize]).as_ref());
        let exact = served_matches(&mut c, "t0", &oracle)?;
        // The newest recovered batch must refuse a duplicate re-send …
        let mut converged = next_seq == 0
            || !c
                .ingest("t0", next_seq - 1, &batches[next_seq as usize - 1])
                .map_err(|e| format!("duplicate resend: {e}"))?;
        // … and replaying the tail past it must converge to the full twin.
        for seq in next_seq..batches.len() as u64 {
            converged &= c
                .ingest("t0", seq, &batches[seq as usize])
                .map_err(|e| format!("replaying seq {seq}: {e}"))?;
        }
        let full_oracle = twin_answers(twin(ALGORITHM, &batches).as_ref());
        converged &= served_matches(&mut c, "t0", &full_oracle)?;
        if detail.is_empty() {
            detail = format!("acked {acked}, recovered to {next_seq} ({replayed} replayed)");
        }
        if s.power_cut {
            detail.push_str(&format!("; power cut dropped {cut} unsynced byte(s)"));
        }
        if truncated_bytes > 0 {
            detail.push_str(&format!("; {truncated_bytes} damaged byte(s) truncated"));
        }
        Ok((exact, converged))
    };
    let (exact_at_recovery, converged) = match verify() {
        Ok(pair) => pair,
        Err(e) => {
            detail = e;
            (false, false)
        }
    };
    server.stop().expect("graceful stop");
    let _ = std::fs::remove_dir_all(&dir);
    CrashRow {
        scenario: s.name,
        durability: match s.durability {
            Durability::AckAfterDurable => "durable",
            Durability::AckAfterApply => "relaxed",
        },
        acked,
        recovered_next_seq: next_seq,
        acked_lost,
        replayed,
        truncated_bytes,
        exact_at_recovery,
        converged,
        detail,
    }
}

/// Runs the full crash matrix (scale-independent: every scenario is always
/// drilled; only the cadence sweep scales).
pub fn crash_matrix() -> (Table, Vec<CrashRow>) {
    let rows: Vec<CrashRow> = scenarios()
        .iter()
        .enumerate()
        .map(|(i, s)| drill(i as u64, s))
        .collect();
    let mut table = Table::new(
        "F15 — crash matrix (durable mode must lose zero acked batches)",
        &[
            "scenario",
            "mode",
            "acked",
            "recovered",
            "lost",
            "replayed",
            "truncated B",
            "exact",
            "converged",
        ],
    );
    for r in &rows {
        table.row(vec![
            r.scenario.to_string(),
            r.durability.to_string(),
            r.acked.to_string(),
            r.recovered_next_seq.to_string(),
            r.acked_lost.to_string(),
            r.replayed.to_string(),
            r.truncated_bytes.to_string(),
            r.exact_at_recovery.to_string(),
            r.converged.to_string(),
        ]);
    }
    (table, rows)
}

/// Every scenario the crash matrix must drill.
pub const SCENARIOS: [&str; 9] = [
    "process_kill_durable",
    "process_kill_relaxed",
    "crash_before_journal_durable",
    "crash_after_journal_durable",
    "crash_after_apply_durable",
    "torn_wal_append_durable",
    "corrupt_wal_record_durable",
    "power_loss_durable",
    "power_loss_relaxed",
];

/// Scenarios covered by the zero-acked-loss contract: every durable-mode
/// scenario except latent media damage (a corrupt record is not a crash — it
/// is detected, truncated, and surfaced as typed counts instead), plus a
/// relaxed-mode process kill (the page cache survives a dead process).
pub const ZERO_LOSS_SCENARIOS: [&str; 7] = [
    "process_kill_durable",
    "process_kill_relaxed",
    "crash_before_journal_durable",
    "crash_after_journal_durable",
    "crash_after_apply_durable",
    "torn_wal_append_durable",
    "power_loss_durable",
];

/// The matrix's law.  Every scenario recovered exactly and converged; the
/// zero-loss scenarios lost nothing; the torn and corrupt scenarios actually
/// truncated damage (a drill that injects nothing proves nothing); relaxed
/// power loss is bounded by the group-commit window and nonzero (the
/// simulation demonstrably cut something).
pub fn matrix_check(rows: &[CrashRow]) -> Result<(), String> {
    for name in SCENARIOS {
        let Some(row) = rows.iter().find(|r| r.scenario == name) else {
            return Err(format!("scenario {name:?} was never drilled"));
        };
        if !row.exact_at_recovery {
            return Err(format!(
                "scenario {name:?} diverged from the twin of its recovered prefix: {}",
                row.detail
            ));
        }
        if !row.converged {
            return Err(format!(
                "scenario {name:?} did not converge to the full twin after replay: {}",
                row.detail
            ));
        }
        if ZERO_LOSS_SCENARIOS.contains(&name) && !row.zero_acked_loss() {
            return Err(format!(
                "scenario {name:?} lost {} acked batch(es): {}",
                row.acked_lost, row.detail
            ));
        }
    }
    let truncating = ["torn_wal_append_durable", "corrupt_wal_record_durable"];
    for name in truncating {
        let row = rows.iter().find(|r| r.scenario == name).unwrap();
        if row.truncated_bytes == 0 {
            return Err(format!(
                "scenario {name:?} truncated nothing — the fault did not fire: {}",
                row.detail
            ));
        }
    }
    let relaxed = rows
        .iter()
        .find(|r| r.scenario == "power_loss_relaxed")
        .unwrap();
    if relaxed.acked_lost == 0 || relaxed.acked_lost > GROUP_COMMIT {
        return Err(format!(
            "relaxed power loss must lose within (0, {GROUP_COMMIT}] batches, lost {}: {}",
            relaxed.acked_lost, relaxed.detail
        ));
    }
    Ok(())
}

// --- cadence sweep ------------------------------------------------------------

/// One (algorithm × checkpoint cadence) cell of the recovery-cost sweep.
#[derive(Debug, Clone)]
pub struct CadenceRow {
    /// Registry algorithm id.
    pub algorithm: String,
    /// Batches between checkpoints.
    pub cadence: usize,
    /// Batches ingested.
    pub batches: usize,
    /// Items ingested.
    pub items: u64,
    /// Journal batches replayed at restart (the uncheckpointed tail).
    pub replayed: u64,
    /// Wall-clock restart-and-recover time, milliseconds.
    pub recovery_ms: f64,
    /// Bytes of checkpoint files on disk at the crash (base + deltas).
    pub checkpoint_bytes: u64,
    /// Lifetime journal bytes appended during the run.
    pub wal_bytes: u64,
    /// Total durable bytes written per ingested item.
    pub durable_bytes_per_item: f64,
    /// Whether the recovered tenant matched its registry twin exactly.
    pub exact: bool,
}

/// Registry ids whose durable-byte bill the paper's thesis predicts to be
/// small: few state changes ⇒ small deltas at every cadence.
pub const FEW_STATE: [&str; 2] = ["misra_gries", "space_saving"];

/// The sweep grid at `scale`: checkpoint cadences and batches per cell.
fn sweep_grid(scale: Scale) -> (Vec<usize>, usize) {
    (scale.pick(vec![1, 4], vec![1, 2, 4, 8]), scale.pick(16, 64))
}

/// Bytes of checkpoint state (base + delta files) in a tenant directory.
fn checkpoint_bytes(dir: &Path, tenant: &str) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir.join(tenant)) else {
        return 0;
    };
    entries
        .filter_map(|e| e.ok())
        .filter(|e| {
            e.file_name().to_str().is_some_and(|n| {
                n == "base.fscs" || (n.starts_with("delta-") && n.ends_with(".fscd"))
            })
        })
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum()
}

/// Runs one sweep cell: ingest with checkpoints every `cadence` batches
/// (skipping the final one, so a journal tail is left to replay), kill the
/// server, time the restart, verify against the twin.
fn sweep_cell(algorithm: &str, cadence: usize, batches: usize) -> Result<CadenceRow, String> {
    let dir = fresh_dir(&format!("sweep-{algorithm}-{cadence}"));
    let work = workload(batches);
    let (server, _) = start_server(
        &dir,
        Arc::new(FaultPlan::none()),
        Durability::AckAfterDurable,
    );
    let mut c = Client::new(server.addr(), ClientConfig::default());
    c.create_tenant("t0", algorithm, SHARDS)
        .map_err(|e| format!("{algorithm}: create: {e}"))?;
    for (seq, batch) in work.iter().enumerate() {
        c.ingest("t0", seq as u64, batch)
            .map_err(|e| format!("{algorithm}: seq {seq}: {e}"))?;
        if (seq + 1) % cadence == 0 && seq + 1 < batches {
            c.checkpoint("t0")
                .map_err(|e| format!("{algorithm}: checkpoint: {e}"))?;
        }
    }
    let status = c
        .status()
        .map_err(|e| format!("{algorithm}: status: {e}"))?;
    let wal_bytes = status
        .tenants
        .iter()
        .find(|t| t.tenant == "t0")
        .map(|t| t.wal_appended_bytes)
        .ok_or_else(|| format!("{algorithm}: tenant missing from status"))?;
    server.crash();

    let checkpoint_bytes = checkpoint_bytes(&dir, "t0");
    let started = Instant::now();
    let (server, report) = start_server(
        &dir,
        Arc::new(FaultPlan::none()),
        Durability::AckAfterDurable,
    );
    let recovery_ms = started.elapsed().as_secs_f64() * 1e3;
    let (next_seq, replayed, truncated) =
        recovered(&report, "t0").ok_or_else(|| format!("{algorithm}: tenant failed to recover"))?;
    if next_seq != batches as u64 || truncated != 0 {
        return Err(format!(
            "{algorithm} cadence {cadence}: recovered to {next_seq}/{batches} \
             with {truncated} truncated byte(s) — a kill damages nothing"
        ));
    }
    let mut c = Client::new(server.addr(), ClientConfig::default());
    let oracle = twin_answers(twin(algorithm, &work).as_ref());
    let exact = served_matches(&mut c, "t0", &oracle)?;
    server.stop().expect("graceful stop");
    let _ = std::fs::remove_dir_all(&dir);

    let items = (batches * BATCH) as u64;
    Ok(CadenceRow {
        algorithm: algorithm.to_string(),
        cadence,
        batches,
        items,
        replayed,
        recovery_ms,
        checkpoint_bytes,
        wal_bytes,
        durable_bytes_per_item: (checkpoint_bytes + wal_bytes) as f64 / items as f64,
        exact,
    })
}

/// Runs the cadence sweep over every engine-capable registry algorithm.
pub fn cadence_sweep(scale: Scale) -> (Table, Vec<CadenceRow>) {
    let (cadences, batches) = sweep_grid(scale);
    let mut table = Table::new(
        "F15 — recovery-cost sweep (durable mode, checkpoint every k batches)",
        &[
            "algorithm",
            "cadence",
            "replayed",
            "recovery ms",
            "ckpt B",
            "wal B",
            "durable B/item",
            "exact",
        ],
    );
    let mut rows = Vec::new();
    for spec in engine_specs() {
        for &cadence in &cadences {
            let row = sweep_cell(spec.id, cadence, batches)
                .unwrap_or_else(|e| panic!("cadence sweep cell failed: {e}"));
            table.row(vec![
                row.algorithm.clone(),
                row.cadence.to_string(),
                row.replayed.to_string(),
                f(row.recovery_ms),
                row.checkpoint_bytes.to_string(),
                row.wal_bytes.to_string(),
                f(row.durable_bytes_per_item),
                row.exact.to_string(),
            ]);
            rows.push(row);
        }
    }
    (table, rows)
}

/// At the tightest cadence swept, the ratio of the worst write-heavy
/// baseline's durable bytes per item to the best few-state algorithm's.
pub fn durable_ratio(rows: &[CadenceRow]) -> Option<f64> {
    let tight = rows.iter().map(|r| r.cadence).min()?;
    let at_tight = move |few: bool| {
        rows.iter()
            .filter(move |r| r.cadence == tight && FEW_STATE.contains(&r.algorithm.as_str()) == few)
    };
    let best_few = at_tight(true)
        .map(|r| r.durable_bytes_per_item)
        .fold(f64::INFINITY, f64::min);
    let worst_baseline = at_tight(false)
        .map(|r| r.durable_bytes_per_item)
        .fold(0.0, f64::max);
    (best_few.is_finite() && worst_baseline > 0.0).then_some(worst_baseline / best_few)
}

/// The sweep's law: every cell recovered the full run exactly and replayed
/// exactly its uncheckpointed tail, and at the tightest cadence at least one
/// few-state algorithm beats the worst write-heavy baseline's durable-byte
/// bill by ≥ 2×.
pub fn sweep_check(rows: &[CadenceRow]) -> Result<(), String> {
    if rows.is_empty() {
        return Err("cadence sweep produced no cells".into());
    }
    for r in rows {
        if !r.exact {
            return Err(format!(
                "{} at cadence {} diverged from its registry twin after recovery",
                r.algorithm, r.cadence
            ));
        }
        if r.replayed != r.cadence as u64 {
            return Err(format!(
                "{} at cadence {} replayed {} batch(es), expected the {}-batch tail",
                r.algorithm, r.cadence, r.replayed, r.cadence
            ));
        }
    }
    match durable_ratio(rows) {
        Some(ratio) if ratio >= 2.0 => Ok(()),
        Some(ratio) => Err(format!(
            "durable-byte advantage at the tightest cadence is only {ratio:.2}× \
             (need ≥ 2×): few-state checkpoints are not paying for themselves"
        )),
        None => Err("durable-byte ratio is undefined (a cohort is missing)".into()),
    }
}

// --- JSON record --------------------------------------------------------------

fn sanitize(text: &str) -> String {
    text.chars()
        .map(|c| match c {
            '"' | '\\' | '[' | ']' => '_',
            c if c.is_control() => '_',
            c => c,
        })
        .collect()
}

/// Serializes the record written to `BENCH_recovery.json`.
pub fn to_json(
    scale: Scale,
    matrix: &[CrashRow],
    sweep: &[CadenceRow],
    trajectory: &[String],
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"recovery\",\n");
    out.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        scale.pick("Quick", "Full")
    ));
    out.push_str(&format!("  \"matrix_algorithm\": \"{ALGORITHM}\",\n"));
    out.push_str(&format!("  \"group_commit\": {GROUP_COMMIT},\n"));
    out.push_str("  \"crash_matrix\": [\n");
    for (i, r) in matrix.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"durability\": \"{}\", \"acked\": {}, \
             \"recovered_next_seq\": {}, \"acked_lost\": {}, \"replayed\": {}, \
             \"truncated_bytes\": {}, \"exact_at_recovery\": {}, \"converged\": {}, \
             \"detail\": \"{}\"}}{}\n",
            r.scenario,
            r.durability,
            r.acked,
            r.recovered_next_seq,
            r.acked_lost,
            r.replayed,
            r.truncated_bytes,
            r.exact_at_recovery,
            r.converged,
            sanitize(&r.detail),
            if i + 1 < matrix.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"cadence_sweep\": [\n");
    for (i, r) in sweep.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"algorithm\": \"{}\", \"cadence\": {}, \"batches\": {}, \
             \"items\": {}, \"replayed\": {}, \"recovery_ms\": {:.3}, \
             \"checkpoint_bytes\": {}, \"wal_bytes\": {}, \
             \"durable_bytes_per_item\": {:.3}, \"exact\": {}}}{}\n",
            sanitize(&r.algorithm),
            r.cadence,
            r.batches,
            r.items,
            r.replayed,
            r.recovery_ms,
            r.checkpoint_bytes,
            r.wal_bytes,
            r.durable_bytes_per_item,
            r.exact,
            if i + 1 < sweep.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"trajectory\": [\n");
    for (i, entry) in trajectory.iter().enumerate() {
        out.push_str(&format!(
            "    {entry}{}\n",
            if i + 1 < trajectory.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

/// One trajectory entry: the matrix verdict plus the headline durable-byte
/// ratio, same shape as the other records.
pub fn trajectory_entry(
    date: &str,
    label: &str,
    scale: Scale,
    matrix: &[CrashRow],
    sweep: &[CadenceRow],
) -> String {
    let (date, label) = (sanitize(date), sanitize(label));
    let zero_loss = matrix
        .iter()
        .filter(|r| ZERO_LOSS_SCENARIOS.contains(&r.scenario) && r.zero_acked_loss())
        .count();
    let ratio = durable_ratio(sweep)
        .map(|x| format!("{x:.2}"))
        .unwrap_or_else(|| "null".to_string());
    format!(
        "{{\"date\": \"{date}\", \"label\": \"{label}\", \"scale\": \"{}\", \
         \"crash_scenarios\": {}, \"zero_loss_held\": {zero_loss}, \
         \"zero_loss_required\": {}, \"durable_bytes_ratio\": {ratio}}}",
        scale.pick("Quick", "Full"),
        matrix.len(),
        ZERO_LOSS_SCENARIOS.len(),
    )
}

/// Structural check of the emitted JSON (a malformed record fails CI instead
/// of silently rotting).
pub fn schema_check(json: &str) -> Result<(), String> {
    for key in [
        "\"experiment\": \"recovery\"",
        "\"scale\":",
        "\"group_commit\":",
        "\"crash_matrix\":",
        "\"acked_lost\":",
        "\"exact_at_recovery\": true",
        "\"converged\": true",
        "\"cadence_sweep\":",
        "\"durable_bytes_per_item\":",
        "\"recovery_ms\":",
        "\"exact\": true",
        "\"trajectory\":",
        "\"date\":",
        "\"zero_loss_held\":",
        "\"durable_bytes_ratio\":",
    ] {
        if !json.contains(key) {
            return Err(format!("BENCH_recovery.json is missing {key}"));
        }
    }
    for scenario in SCENARIOS {
        if !json.contains(&format!("\"scenario\": \"{scenario}\"")) {
            return Err(format!(
                "BENCH_recovery.json is missing scenario {scenario:?}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_matrix_durable_mode_loses_no_acked_batches() {
        let (table, rows) = crash_matrix();
        assert_eq!(rows.len(), SCENARIOS.len());
        assert_eq!(table.len(), rows.len());
        matrix_check(&rows).unwrap_or_else(|e| panic!("crash-matrix law: {e}"));
    }

    #[test]
    fn quick_cadence_sweep_recovers_exactly_and_prices_durability() {
        let (table, rows) = cadence_sweep(Scale::Quick);
        let (cadences, _) = sweep_grid(Scale::Quick);
        assert_eq!(rows.len(), engine_specs().len() * cadences.len());
        assert_eq!(table.len(), rows.len());
        sweep_check(&rows).unwrap_or_else(|e| panic!("cadence-sweep law: {e}"));
    }

    #[test]
    fn json_record_passes_its_own_schema_check() {
        let matrix: Vec<CrashRow> = SCENARIOS
            .iter()
            .map(|&scenario| CrashRow {
                scenario,
                durability: "durable",
                acked: 8,
                recovered_next_seq: 8,
                acked_lost: 0,
                replayed: 5,
                truncated_bytes: 0,
                exact_at_recovery: true,
                converged: true,
                detail: "synthetic \"detail\" [with] hostile\nbytes".into(),
            })
            .collect();
        let sweep = vec![
            CadenceRow {
                algorithm: "misra_gries".into(),
                cadence: 1,
                batches: 16,
                items: 2048,
                replayed: 1,
                recovery_ms: 4.2,
                checkpoint_bytes: 9_000,
                wal_bytes: 8_704,
                durable_bytes_per_item: 8.6,
                exact: true,
            },
            CadenceRow {
                algorithm: "exact_counting".into(),
                cadence: 1,
                batches: 16,
                items: 2048,
                replayed: 1,
                recovery_ms: 4.8,
                checkpoint_bytes: 45_000,
                wal_bytes: 8_704,
                durable_bytes_per_item: 26.2,
                exact: true,
            },
        ];
        let entry = trajectory_entry("2026-08-09", "unit", Scale::Quick, &matrix, &sweep);
        let json = to_json(Scale::Quick, &matrix, &sweep, std::slice::from_ref(&entry));
        schema_check(&json).expect("schema");
        assert!(entry.contains("\"zero_loss_held\": 7"));
        assert!(entry.contains(&format!("\"durable_bytes_ratio\": {:.2}", 26.2 / 8.6)));
        assert!(!json.contains("hostile\nbytes"), "detail sanitized");
        let restored = crate::experiments::throughput::trajectory_inner(&json)
            .expect("trajectory parses back");
        assert_eq!(restored, vec![entry]);
    }

    #[test]
    fn matrix_check_rejects_loss_and_missing_scenarios() {
        let mut rows: Vec<CrashRow> = SCENARIOS
            .iter()
            .map(|&scenario| CrashRow {
                scenario,
                durability: "durable",
                acked: 8,
                recovered_next_seq: if scenario == "power_loss_relaxed" {
                    7
                } else if scenario == "corrupt_wal_record_durable" {
                    5
                } else {
                    8
                },
                acked_lost: if scenario == "power_loss_relaxed" {
                    1
                } else if scenario == "corrupt_wal_record_durable" {
                    3
                } else {
                    0
                },
                replayed: 5,
                truncated_bytes: if scenario == "torn_wal_append_durable"
                    || scenario == "corrupt_wal_record_durable"
                {
                    700
                } else {
                    0
                },
                exact_at_recovery: true,
                converged: true,
                detail: String::new(),
            })
            .collect();
        matrix_check(&rows).expect("all-pass matrix");

        let kill = rows
            .iter_mut()
            .find(|r| r.scenario == "process_kill_durable")
            .unwrap();
        kill.acked_lost = 1;
        let err = matrix_check(&rows).expect_err("acked loss must fail");
        assert!(err.contains("process_kill_durable"), "{err}");
        rows.iter_mut()
            .find(|r| r.scenario == "process_kill_durable")
            .unwrap()
            .acked_lost = 0;

        let torn = rows
            .iter_mut()
            .find(|r| r.scenario == "torn_wal_append_durable")
            .unwrap();
        torn.truncated_bytes = 0;
        let err = matrix_check(&rows).expect_err("a drill that tears nothing proves nothing");
        assert!(err.contains("torn_wal_append_durable"), "{err}");
        rows.iter_mut()
            .find(|r| r.scenario == "torn_wal_append_durable")
            .unwrap()
            .truncated_bytes = 700;

        rows.retain(|r| r.scenario != "power_loss_relaxed");
        let err = matrix_check(&rows).expect_err("a missing scenario must fail");
        assert!(err.contains("power_loss_relaxed"), "{err}");
    }

    #[test]
    fn sweep_check_requires_the_durability_advantage() {
        let row = |algorithm: &str, dbpi: f64| CadenceRow {
            algorithm: algorithm.into(),
            cadence: 1,
            batches: 16,
            items: 2048,
            replayed: 1,
            recovery_ms: 1.0,
            checkpoint_bytes: 1,
            wal_bytes: 1,
            durable_bytes_per_item: dbpi,
            exact: true,
        };
        let good = vec![row("misra_gries", 8.0), row("exact_counting", 26.0)];
        sweep_check(&good).expect("3.25× advantage passes");
        let bad = vec![row("misra_gries", 20.0), row("exact_counting", 26.0)];
        let err = sweep_check(&bad).expect_err("1.3× must fail");
        assert!(err.contains("1.30"), "{err}");
    }
}
