//! Experiment T1 — reproduces **Table 1** of the paper.
//!
//! Table 1 compares the number of internal state changes of the classic heavy-hitter
//! summaries (Misra-Gries, CountMin, SpaceSaving — `L_1` only; CountSketch — `L_2`)
//! against the paper's algorithm, on a stream of length `m` over a universe of size
//! `n`: the classics change state `O(m)` times, the paper's algorithm
//! `Õ(n^{1−1/p})` times, at comparable (near-optimal) space.
//!
//! We run every algorithm on the same Zipfian stream and report measured state
//! changes, the fraction of updates that changed state, space, and heavy-hitter recall
//! against ground truth.

use fsc::{FewStateHeavyHitters, Params, SampleAndHold};
use fsc_baselines::{CountMin, CountSketch, MisraGries, SpaceSaving};
use fsc_state::{FrequencyEstimator, StreamAlgorithm};
use fsc_streamgen::ground_truth::precision_recall;
use fsc_streamgen::zipf::zipf_stream;
use fsc_streamgen::FrequencyVector;

use crate::table::{f, Table};
use crate::Scale;

/// One measured row of Table 1.
#[derive(Debug, Clone)]
pub struct Row {
    /// Algorithm name.
    pub name: String,
    /// Which `L_p` norm the algorithm targets.
    pub setting: &'static str,
    /// Measured number of state changes.
    pub state_changes: u64,
    /// `state_changes / m`.
    pub change_fraction: f64,
    /// Peak space in words.
    pub space_words: usize,
    /// Recall of the exact `L_2` heavy hitters (or `L_1` for the `L_1`-only rows).
    pub recall: f64,
}

/// Runs the Table 1 comparison and returns the rows.
pub fn run(scale: Scale) -> (Table, Vec<Row>) {
    let n = scale.pick(1 << 12, 1 << 16);
    let m = 4 * n;
    // The quick profile uses a milder ε so that the state-change gap is visible even at
    // the reduced universe size (the gap widens with n; see EXPERIMENTS.md).
    let eps = scale.pick(0.2, 0.1);
    let stream = zipf_stream(n, m, 1.1, 42);
    let truth = FrequencyVector::from_stream(&stream);
    let exact_l1: Vec<u64> = truth
        .heavy_hitters(1.0, eps)
        .into_iter()
        .map(|(i, _)| i)
        .collect();
    let exact_l2: Vec<u64> = truth
        .heavy_hitters(2.0, eps)
        .into_iter()
        .map(|(i, _)| i)
        .collect();
    let candidates: Vec<u64> = truth.top_k(64).into_iter().map(|(i, _)| i).collect();

    let mut rows = Vec::new();

    // --- L1-only baselines -------------------------------------------------------
    let mut mg = MisraGries::for_epsilon(eps / 2.0);
    mg.process_stream(&stream);
    rows.push(score_tracked(
        &mg,
        "L1 heavy hitters only",
        eps,
        &truth,
        &exact_l1,
        1.0,
    ));

    let mut ss = SpaceSaving::for_epsilon(eps / 2.0);
    ss.process_stream(&stream);
    rows.push(score_tracked(
        &ss,
        "L1 heavy hitters only",
        eps,
        &truth,
        &exact_l1,
        1.0,
    ));

    let mut cm = CountMin::for_error(eps / 2.0, 0.05, 7);
    cm.process_stream(&stream);
    rows.push(score_candidates(
        &cm,
        "L1 heavy hitters only",
        eps,
        &truth,
        &exact_l1,
        &candidates,
        1.0,
    ));

    // --- L2 baselines and the paper's algorithm ----------------------------------
    let mut cs = CountSketch::for_error(eps, 0.05, 11);
    cs.process_stream(&stream);
    rows.push(score_candidates(
        &cs,
        "L2 heavy hitters",
        eps,
        &truth,
        &exact_l2,
        &candidates,
        2.0,
    ));

    // The core subroutine (Algorithm 1) — a single write-frugal summary; this is the
    // row whose state-change count exhibits the Õ(n^{1−1/p}) ≪ m gap of Table 1.
    let mut core = SampleAndHold::standalone(&Params::new(2.0, eps, n, m).with_seed(3));
    core.process_stream(&stream);
    rows.push(score_tracked(
        &core,
        "L2 heavy hitters (this paper, Algorithm 1)",
        eps,
        &truth,
        &exact_l2,
        2.0,
    ));

    // The full Theorem 1.1 construction (R × Y copies of Algorithm 1).  Its *per-copy*
    // behaviour is identical, but because the per-update state-change indicator is
    // shared by all copies, its per-epoch count saturates at practical sizes; it is
    // reported for completeness.
    let mut ours = FewStateHeavyHitters::new(Params::new(2.0, eps, n, m).with_seed(3));
    ours.process_stream(&stream);
    rows.push(score_tracked(
        &ours,
        "L2 heavy hitters (this paper, Theorem 1.1)",
        eps,
        &truth,
        &exact_l2,
        2.0,
    ));

    let mut table = Table::new(
        &format!("Table 1 — state changes on a Zipf(1.1) stream, n = {n}, m = {m}, eps = {eps}"),
        &[
            "algorithm",
            "setting",
            "state changes",
            "changes / m",
            "space (words)",
            "recall",
        ],
    );
    for r in &rows {
        table.row(vec![
            r.name.clone(),
            r.setting.to_string(),
            r.state_changes.to_string(),
            f(r.change_fraction),
            r.space_words.to_string(),
            f(r.recall),
        ]);
    }
    (table, rows)
}

/// Query threshold used when extracting heavy hitters from a summary.  Estimators whose
/// guarantee is `|f̂ − f| ≤ (ε/2)·‖f‖_p` (all of the algorithms here, at the sizes
/// chosen) must be queried strictly between `ε/2` and `ε` times the norm to report every
/// true ε-heavy hitter while never reporting anything below the ε/2 floor.
fn query_threshold(eps: f64, norm: f64) -> f64 {
    0.75 * eps * norm
}

fn score_tracked<A: FrequencyEstimator>(
    alg: &A,
    setting: &'static str,
    eps: f64,
    truth: &FrequencyVector,
    exact: &[u64],
    p: f64,
) -> Row {
    let threshold = query_threshold(eps, truth.lp(p));
    let reported: Vec<u64> = alg
        .heavy_hitters(threshold)
        .into_iter()
        .map(|(i, _)| i)
        .collect();
    let (_, recall) = precision_recall(&reported, exact);
    finish(alg, setting, recall)
}

fn score_candidates<A: FrequencyEstimator>(
    alg: &A,
    setting: &'static str,
    eps: f64,
    truth: &FrequencyVector,
    exact: &[u64],
    candidates: &[u64],
    p: f64,
) -> Row {
    let threshold = query_threshold(eps, truth.lp(p));
    let reported: Vec<u64> = candidates
        .iter()
        .copied()
        .filter(|&c| alg.estimate(c) >= threshold)
        .collect();
    let (_, recall) = precision_recall(&reported, exact);
    finish(alg, setting, recall)
}

fn finish<A: StreamAlgorithm>(alg: &A, setting: &'static str, recall: f64) -> Row {
    let report = alg.report();
    Row {
        name: alg.name().to_string(),
        setting,
        state_changes: report.state_changes,
        change_fraction: report.change_fraction(),
        space_words: report.words_peak,
        recall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classics_write_per_update_and_ours_does_not() {
        let (table, rows) = run(Scale::Quick);
        assert_eq!(rows.len(), 6);
        assert!(!table.is_empty());
        let core = &rows[4];
        let full = &rows[5];
        assert!(core.name.contains("SampleAndHold"));
        assert!(full.name.contains("FewStateHeavyHitters"));
        for classic in &rows[..4] {
            assert!(
                classic.change_fraction > 0.95,
                "{} should write on ~every update",
                classic.name
            );
            assert!(
                (core.state_changes as f64) < 0.7 * classic.state_changes as f64,
                "Algorithm 1 ({}) vs {} ({})",
                core.state_changes,
                classic.name,
                classic.state_changes
            );
        }
        assert!(core.recall >= 0.99, "core recall {}", core.recall);
        assert!(full.recall >= 0.99, "full recall {}", full.recall);
    }
}
