//! Experiment F4 — heavy-hitter quality versus the classic summaries (Theorem 1.1).
//!
//! All algorithms process the same Zipfian stream; we report recall and precision of
//! the exact `L_p` heavy-hitter set, the worst-case frequency-estimate error over the
//! exact heavy hitters (normalised by `ε·‖f‖_p`, which Theorem 1.1 bounds by 1/2), and
//! the state-change count.

use fsc::{FewStateHeavyHitters, Params};
use fsc_baselines::{CountSketch, MisraGries, SpaceSaving};
use fsc_state::{FrequencyEstimator, StreamAlgorithm};
use fsc_streamgen::ground_truth::precision_recall;
use fsc_streamgen::zipf::zipf_stream;
use fsc_streamgen::FrequencyVector;

use crate::table::{f, Table};
use crate::Scale;

/// One algorithm's heavy-hitter scorecard.
#[derive(Debug, Clone)]
pub struct Row {
    /// Algorithm name.
    pub name: String,
    /// Norm order `p` used for the ground-truth heavy-hitter set.
    pub p: f64,
    /// Threshold parameter ε.
    pub eps: f64,
    /// Recall of the exact heavy hitters.
    pub recall: f64,
    /// Precision against the ε/4 soundness floor.
    pub precision: f64,
    /// Worst frequency-estimate error over exact heavy hitters, in units of `ε·‖f‖_p`.
    pub max_error_units: f64,
    /// Measured state changes.
    pub state_changes: u64,
}

/// Runs the comparison for `p = 1` and `p = 2`.
pub fn run(scale: Scale) -> (Table, Vec<Row>) {
    let n = scale.pick(1 << 12, 1 << 15);
    let m = 4 * n;
    let stream = zipf_stream(n, m, 1.2, 123);
    let truth = FrequencyVector::from_stream(&stream);
    let eps = 0.1;

    let mut rows = Vec::new();
    for &p in &[1.0, 2.0] {
        let exact: Vec<u64> = truth
            .heavy_hitters(p, eps)
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        let norm = truth.lp(p);

        if (p - 1.0).abs() < 1e-9 {
            let mut mg = MisraGries::for_epsilon(eps / 4.0);
            mg.process_stream(&stream);
            rows.push(score(&mg, p, eps, &truth, &exact, norm));
            let mut ss = SpaceSaving::for_epsilon(eps / 4.0);
            ss.process_stream(&stream);
            rows.push(score(&ss, p, eps, &truth, &exact, norm));
        } else {
            let mut cs = CountSketch::for_error(eps / 2.0, 0.05, 9);
            cs.process_stream(&stream);
            // CountSketch has no key set: score it over the exact candidates.
            let reported: Vec<u64> = truth
                .top_k(256)
                .into_iter()
                .map(|(i, _)| i)
                .filter(|&i| cs.estimate(i) >= eps * norm)
                .collect();
            let (precision, recall) = precision_recall(&reported, &exact);
            let max_error_units = exact
                .iter()
                .map(|&i| (cs.estimate(i) - truth.frequency(i) as f64).abs() / (eps * norm))
                .fold(0.0, f64::max);
            rows.push(Row {
                name: cs.name().to_string(),
                p,
                eps,
                recall,
                precision,
                max_error_units,
                state_changes: cs.report().state_changes,
            });
        }

        let mut ours = FewStateHeavyHitters::new(Params::new(p.max(1.0), eps, n, m).with_seed(7));
        ours.process_stream(&stream);
        rows.push(score(&ours, p, eps, &truth, &exact, norm));
    }

    let mut table = Table::new(
        &format!("F4 — heavy hitters on a Zipf(1.2) stream (n = {n}, m = {m}, eps = {eps})"),
        &[
            "algorithm",
            "p",
            "recall",
            "precision(ε/4 floor)",
            "max |f̂-f| / (ε·‖f‖_p)",
            "state changes",
        ],
    );
    for r in &rows {
        table.row(vec![
            r.name.clone(),
            f(r.p),
            f(r.recall),
            f(r.precision),
            f(r.max_error_units),
            r.state_changes.to_string(),
        ]);
    }
    (table, rows)
}

fn score<A: FrequencyEstimator>(
    alg: &A,
    p: f64,
    eps: f64,
    truth: &FrequencyVector,
    exact: &[u64],
    norm: f64,
) -> Row {
    let reported: Vec<u64> = alg
        .heavy_hitters(eps * norm)
        .into_iter()
        .map(|(i, _)| i)
        .collect();
    let (_, recall) = precision_recall(&reported, exact);
    // Precision against the ε/4 soundness floor: anything reported must truly have
    // frequency at least ε/4·‖f‖_p.
    let sound: Vec<u64> = truth
        .iter()
        .filter(|&(_, c)| c as f64 >= 0.25 * eps * norm)
        .map(|(i, _)| i)
        .collect();
    let (precision, _) = precision_recall(&reported, &sound);
    let max_error_units = exact
        .iter()
        .map(|&i| (alg.estimate(i) - truth.frequency(i) as f64).abs() / (eps * norm))
        .fold(0.0, f64::max);
    Row {
        name: alg.name().to_string(),
        p,
        eps,
        recall,
        precision,
        max_error_units,
        state_changes: alg.report().state_changes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn our_algorithm_matches_recall_with_fewer_writes() {
        let (_, rows) = run(Scale::Quick);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(r.recall >= 0.9, "{} recall {}", r.name, r.recall);
            assert!(r.precision >= 0.9, "{} precision {}", r.name, r.precision);
        }
        let ours_l2 = rows.last().unwrap();
        let countsketch = &rows[3];
        assert!(ours_l2.name.contains("FewState"));
        assert!(ours_l2.state_changes < countsketch.state_changes);
        // Theorem 1.1 bounds the estimate error by (ε/2)·‖f‖_p; allow practical slack.
        assert!(
            ours_l2.max_error_units < 1.0,
            "error {}",
            ours_l2.max_error_units
        );
    }
}
