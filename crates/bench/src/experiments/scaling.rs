//! Experiments F1 and F2 — state-change and space scaling of the `F_p` estimator.
//!
//! Theorem 1.3: the number of internal state changes grows as `Õ(n^{1−1/p})` while the
//! space is `poly(log nm, 1/ε)` for `p ∈ [1, 2]` and `Õ(n^{1−2/p})` for `p > 2`.
//! We sweep the universe size `n` (with `m = 4n`), measure both quantities, and fit
//! log-log slopes; the measured slope should approach `1 − 1/p` for state changes and
//! stay near 0 (resp. `1 − 2/p`) for space.

use fsc::{FpEstimator, Params};
use fsc_state::StreamAlgorithm;
use fsc_streamgen::zipf::zipf_stream;

use crate::table::{f, Table};
use crate::{log_log_slope, Scale};

/// Measured scaling for one value of `p`.
#[derive(Debug, Clone)]
pub struct Series {
    /// Moment order.
    pub p: f64,
    /// `(n, state_changes)` points (per-update indicator, the paper's definition).
    pub state_changes: Vec<(f64, f64)>,
    /// `(n, word_writes)` points (total writes across all copies — the quantity the
    /// paper's Õ(n^{1−1/p}) bound actually counts before collapsing it to the
    /// per-update indicator).
    pub word_writes: Vec<(f64, f64)>,
    /// `(n, space_words)` points.
    pub space_words: Vec<(f64, f64)>,
    /// Fitted log-log slope of the state-change curve.
    pub state_slope: f64,
    /// Fitted log-log slope of the word-write curve.
    pub word_slope: f64,
    /// Fitted log-log slope of the space curve.
    pub space_slope: f64,
    /// The slope Theorem 1.3 predicts for state changes.
    pub predicted_state_slope: f64,
}

/// Runs the sweep and returns (state-change table, space table, series).
pub fn run(scale: Scale) -> (Table, Table, Vec<Series>) {
    let ps: Vec<f64> = vec![1.0, 1.5, 2.0, 3.0];
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![1 << 10, 1 << 11, 1 << 12],
        Scale::Full => vec![1 << 12, 1 << 13, 1 << 14, 1 << 15, 1 << 16],
    };
    let eps = 0.3;

    let mut state_table = Table::new(
        "F1 — state changes of the F_p estimator vs n (m = 4n, Zipf 1.1)",
        &[
            "p",
            "n",
            "state changes",
            "changes / m",
            "word writes",
            "slope (fit, changes)",
            "slope (fit, writes)",
            "slope (theory 1-1/p)",
        ],
    );
    let mut space_table = Table::new(
        "F2 — space of the F_p estimator vs n (words)",
        &[
            "p",
            "n",
            "space (words)",
            "slope (fit)",
            "slope (theory max(0,1-2/p))",
        ],
    );

    let mut all = Vec::new();
    for &p in &ps {
        let mut state_points = Vec::new();
        let mut write_points = Vec::new();
        let mut space_points = Vec::new();
        for &n in &sizes {
            let m = 4 * n;
            let stream = zipf_stream(n, m, 1.1, 1000 + n as u64);
            let mut est = FpEstimator::new(Params::new(p, eps, n, m).with_seed(n as u64));
            est.process_stream(&stream);
            let report = est.report();
            state_points.push((n as f64, report.state_changes as f64));
            write_points.push((n as f64, report.word_writes as f64));
            space_points.push((n as f64, report.words_peak as f64));
        }
        let series = Series {
            p,
            state_slope: log_log_slope(&state_points),
            word_slope: log_log_slope(&write_points),
            space_slope: log_log_slope(&space_points),
            predicted_state_slope: 1.0 - 1.0 / p,
            state_changes: state_points,
            word_writes: write_points,
            space_words: space_points,
        };
        for (i, &(n, sc)) in series.state_changes.iter().enumerate() {
            state_table.row(vec![
                f(p),
                (n as usize).to_string(),
                (sc as u64).to_string(),
                f(sc / (4.0 * n)),
                (series.word_writes[i].1 as u64).to_string(),
                if i == 0 {
                    f(series.state_slope)
                } else {
                    String::new()
                },
                if i == 0 {
                    f(series.word_slope)
                } else {
                    String::new()
                },
                if i == 0 {
                    f(series.predicted_state_slope)
                } else {
                    String::new()
                },
            ]);
        }
        for (i, &(n, words)) in series.space_words.iter().enumerate() {
            space_table.row(vec![
                f(p),
                (n as usize).to_string(),
                (words as u64).to_string(),
                if i == 0 {
                    f(series.space_slope)
                } else {
                    String::new()
                },
                if i == 0 {
                    f((1.0 - 2.0 / p).max(0.0))
                } else {
                    String::new()
                },
            ]);
        }
        all.push(series);
    }
    (state_table, space_table, all)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_change_slopes_are_ordered_by_p() {
        let (state, space, series) = run(Scale::Quick);
        assert!(!state.is_empty() && !space.is_empty());
        assert_eq!(series.len(), 4);
        // Larger p ⇒ steeper state-change growth (the n^{1-1/p} law), even at the
        // reduced quick scale where absolute slopes are noisy.
        let p1 = &series[0];
        let p3 = &series[3];
        assert!(
            p3.state_slope > p1.state_slope - 0.05,
            "slope(p=3) = {} should not be below slope(p=1) = {}",
            p3.state_slope,
            p1.state_slope
        );
        // p = 1 state changes must be far below the stream length at the largest n.
        let (n, sc) = *p1.state_changes.last().unwrap();
        assert!(
            sc < 0.8 * 4.0 * n,
            "p=1 state changes {sc} vs m {}",
            4.0 * n
        );
    }
}
