//! F14 — the networked front-end under load and under fire; backs the
//! `fig_serve_net` binary and `BENCH_serve_net.json`.
//!
//! Two halves:
//!
//! * **Saturation sweep** — a real `fsc-serve` server on an ephemeral port, a
//!   multi-connection [`LoadGen`] per (connections × batch-size) cell, recording
//!   acknowledged-item throughput and p50/p99 ingest latency.  Every cell is
//!   verified, not just timed: every batch must be acknowledged exactly once and
//!   every tenant's sequence cursor must land on the expected value.
//!
//! * **Fault matrix** — one drill per failure class the server claims to
//!   survive: torn checkpoint write, corrupt chain tip, crash mid-ingest,
//!   dropped connections, overload.  Each drill injects its fault
//!   deterministically (seeded [`FaultPlan`]), recovers, and then asserts
//!   **exact equality** against a registry *twin* — an engine built from the
//!   same constructor table fed the same batches — first against a twin that
//!   only saw the durable prefix (the recovery law), then, after the
//!   sequence-numbered client replays the lost suffix, against an uninterrupted
//!   full oracle.  "Recovered" here is a theorem checked byte-for-byte, not a
//!   log line.
//!
//! Latency numbers from CI containers (often 1 CPU) measure scheduling, not the
//! server; the recorded full-scale numbers come from an unloaded multi-core
//! host.  The correctness checks are load-independent.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use fsc_engine::{DynEngine, EngineConfig};
use fsc_serve::faults::{flip_one_byte, splitmix64};
use fsc_serve::{
    Client, ClientConfig, FaultPlan, LoadGen, Server, ServerConfig, ServerHandle, TenantOutcome,
};
use fsc_state::{Answer, Query};

use crate::registry::serve_factory;
use crate::table::{f, Table};
use crate::Scale;

/// Algorithm every drill tenant runs (engine-capable, exact merge, so the
/// served tenant and the local oracle are twins).
const ALGORITHM: &str = "count_min";
/// Shards per tenant engine.
const SHARDS: u32 = 2;
/// Item universe of the drill workload.
const UNIVERSE: u64 = 1 << 10;
/// Items per drill batch.
const DRILL_BATCH: usize = 128;
/// Workload seed shared by drills and their oracles.
const DRILL_SEED: u64 = 0xF14_5EED;

// --- shared helpers -----------------------------------------------------------

/// A scratch data dir under the system temp dir, wiped before use.
fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fsc-serve-net-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The deterministic drill workload: `n` batches of [`DRILL_BATCH`] items.
fn drill_batches(n: usize) -> Vec<Vec<u64>> {
    let mut rng = DRILL_SEED;
    (0..n)
        .map(|_| {
            (0..DRILL_BATCH)
                .map(|_| splitmix64(&mut rng) % UNIVERSE)
                .collect()
        })
        .collect()
}

/// The probe queries every equality check runs (point mass across the hot end
/// of the universe plus the second moment).
fn probes() -> Vec<Query> {
    let mut out: Vec<Query> = (0..24).map(Query::Point).collect();
    out.push(Query::Moment);
    out
}

/// The registry twin: same constructor table, same config the server uses for a
/// tenant of [`ALGORITHM`] with [`SHARDS`] shards, fed `batches` directly.
fn twin(batches: &[Vec<u64>]) -> Box<dyn DynEngine> {
    let factory = serve_factory();
    let config = EngineConfig {
        shards: SHARDS as usize,
        ..EngineConfig::default()
    };
    let mut engine = factory(ALGORITHM, config).expect("registry builds the drill algorithm");
    for batch in batches {
        engine.ingest(batch);
    }
    engine
}

/// Answers of a local twin on the probe set (fresh rebuild — the oracle side).
fn twin_answers(engine: &dyn DynEngine) -> Vec<Answer> {
    probes()
        .iter()
        .map(|q| engine.query_fresh(q).expect("twin answers probes"))
        .collect()
}

/// Answers of a served tenant on the probe set, through the wire.
fn served_answers(client: &mut Client, tenant: &str) -> Result<Vec<Answer>, String> {
    probes()
        .iter()
        .map(|q| {
            client
                .query(tenant, *q)
                .map_err(|e| format!("querying {tenant}: {e}"))
        })
        .collect()
}

/// Starts a server over `dir` with an armed fault plan.
fn start_server(
    dir: &Path,
    faults: Arc<FaultPlan>,
    max_inflight: usize,
) -> (ServerHandle, fsc_serve::RecoveryReport) {
    let config = ServerConfig {
        faults,
        ..ServerConfig::new(dir)
    }
    .with_max_inflight_ingest(max_inflight);
    Server::start("127.0.0.1:0", config, serve_factory()).expect("bind ephemeral port")
}

fn client(addr: SocketAddr) -> Client {
    Client::new(addr, ClientConfig::default())
}

// --- saturation sweep ---------------------------------------------------------

/// One cell of the saturation sweep.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Concurrent connections (one tenant each).
    pub connections: usize,
    /// Items per ingest batch.
    pub batch_size: usize,
    /// Batches per connection.
    pub batches: usize,
    /// Items acknowledged across the run.
    pub items: u64,
    /// Acknowledged-item throughput.
    pub items_per_sec: f64,
    /// Median ingest-request latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile ingest-request latency, microseconds.
    pub p99_us: u64,
    /// Retry attempts across all connections (0 on a healthy loopback).
    pub retries: u64,
    /// Connections established (first connects count, so ≥ `connections`).
    pub reconnects: u64,
    /// Whether the cell verified: no per-connection errors, every batch
    /// acknowledged exactly once, every tenant's cursor at `batches`.
    pub clean: bool,
}

/// The sweep grid at `scale`.
fn sweep_grid(scale: Scale) -> (Vec<usize>, Vec<usize>, usize) {
    let connections = scale.pick(vec![1, 2], vec![1, 2, 4, 8]);
    let batch_sizes = scale.pick(vec![64, 256], vec![64, 256, 1024]);
    let batches = scale.pick(10, 60);
    (connections, batch_sizes, batches)
}

/// Runs the saturation sweep: a fresh server per cell, a [`LoadGen`] per cell,
/// post-run verification of every tenant's cursor.
pub fn run(scale: Scale) -> (Table, Vec<SweepRow>) {
    let (connections, batch_sizes, batches) = sweep_grid(scale);
    let mut table = Table::new(
        "F14 — serve-net saturation sweep (ingest batches over TCP loopback)",
        &[
            "conns", "batch", "items", "items/s", "p50 µs", "p99 µs", "retries", "clean",
        ],
    );
    let mut rows = Vec::new();
    for &conns in &connections {
        for &batch_size in &batch_sizes {
            let dir = fresh_dir(&format!("sweep-{conns}-{batch_size}"));
            let (server, report) = start_server(&dir, Arc::new(FaultPlan::none()), 64);
            assert!(report.tenants.is_empty(), "fresh dir recovers nothing");
            let gen = LoadGen {
                connections: conns,
                batches,
                batch_size,
                algorithm: ALGORITHM.into(),
                shards: SHARDS,
                universe: UNIVERSE,
                seed: DRILL_SEED ^ (conns as u64) << 8 ^ batch_size as u64,
                client: ClientConfig::default(),
            };
            let load = gen.run(server.addr());

            // Verify, don't trust: every tenant's cursor must sit at `batches`
            // and every batch must have been acknowledged exactly once.
            let mut cursors_ok = true;
            let mut check = client(server.addr());
            for i in 0..conns {
                match check.stats(&format!("lg-{i}")) {
                    Ok(stats) => cursors_ok &= stats.next_seq == batches as u64,
                    Err(_) => cursors_ok = false,
                }
            }
            let acked = load.applied_batches + load.duplicate_batches;
            let clean = load.errors.is_empty()
                && load.completed_connections == conns
                && acked == (conns * batches) as u64
                && cursors_ok;

            server.stop().expect("graceful stop");
            let _ = std::fs::remove_dir_all(&dir);

            let row = SweepRow {
                connections: conns,
                batch_size,
                batches,
                items: load.items,
                items_per_sec: load.items_per_sec(),
                p50_us: load.p50.as_micros() as u64,
                p99_us: load.p99.as_micros() as u64,
                retries: load.counters.retries,
                reconnects: load.counters.reconnects,
                clean,
            };
            table.row(vec![
                row.connections.to_string(),
                row.batch_size.to_string(),
                row.items.to_string(),
                f(row.items_per_sec),
                row.p50_us.to_string(),
                row.p99_us.to_string(),
                row.retries.to_string(),
                row.clean.to_string(),
            ]);
            rows.push(row);
        }
    }
    (table, rows)
}

/// The sweep's law: every cell verified clean, every cell moved items.
pub fn sweep_check(rows: &[SweepRow]) -> Result<(), String> {
    if rows.is_empty() {
        return Err("saturation sweep produced no cells".into());
    }
    for r in rows {
        if !r.clean {
            return Err(format!(
                "sweep cell ({} conns × {} items/batch) did not verify: \
                 a batch was lost, double-counted, or a cursor drifted",
                r.connections, r.batch_size
            ));
        }
        if r.items == 0 || r.items_per_sec <= 0.0 {
            return Err(format!(
                "sweep cell ({} conns × {} items/batch) moved no items",
                r.connections, r.batch_size
            ));
        }
    }
    Ok(())
}

// --- fault matrix -------------------------------------------------------------

/// One drilled failure class.
#[derive(Debug, Clone)]
pub struct DrillRow {
    /// Failure class name.
    pub fault: &'static str,
    /// Whether the fault demonstrably fired (a drill that injects nothing
    /// proves nothing).
    pub injected: bool,
    /// Whether the server came back (or stayed up) with the expected typed
    /// recovery outcome.
    pub recovered: bool,
    /// Whether every exact-equality check against the registry twins passed.
    pub answers_match: bool,
    /// Damaged chain entries discarded during recovery.
    pub discarded: usize,
    /// One-line account of what happened.
    pub detail: String,
}

impl DrillRow {
    /// A drill passes when its fault fired, recovery behaved, and every answer
    /// matched the oracle.
    pub fn passed(&self) -> bool {
        self.injected && self.recovered && self.answers_match
    }
}

/// Reads the recovered outcome for `tenant` out of a startup report.
fn recovered_outcome(
    report: &fsc_serve::RecoveryReport,
    tenant: &str,
) -> Option<(u64, u64, usize)> {
    report.tenants.iter().find_map(|t| {
        if t.tenant != tenant {
            return None;
        }
        match t.outcome {
            TenantOutcome::Recovered {
                epoch,
                next_seq,
                discarded,
                ..
            } => Some((epoch, next_seq, discarded)),
            TenantOutcome::Failed { .. } => None,
        }
    })
}

/// Replays `batches[from..]` through the sequence-numbered client and proves
/// exactly-once by re-sending an already-applied sequence number first.
/// Returns `(suffix_applied, duplicate_refused)`.
fn replay_suffix(
    client: &mut Client,
    tenant: &str,
    batches: &[Vec<u64>],
    from: u64,
) -> Result<(bool, bool), String> {
    let mut duplicate_refused = true;
    if from > 0 {
        // The survivor: its first copy landed before the fault; the retry must
        // ack without re-applying.
        let applied = client
            .ingest(tenant, from - 1, &batches[from as usize - 1])
            .map_err(|e| format!("duplicate resend: {e}"))?;
        duplicate_refused = !applied;
    }
    for seq in from..batches.len() as u64 {
        let applied = client
            .ingest(tenant, seq, &batches[seq as usize])
            .map_err(|e| format!("replaying seq {seq}: {e}"))?;
        if !applied {
            return Err(format!(
                "seq {seq} was already applied; replay started late"
            ));
        }
    }
    Ok((true, duplicate_refused))
}

/// Drill: the nth durable delta write is torn mid-write.  Chain recovery must
/// fall back to the newest valid prefix, and the write-ahead journal — which a
/// torn checkpoint write stops truncating — must restore every acked batch
/// without any client replay.
fn drill_torn_write() -> DrillRow {
    let fault = "torn_checkpoint_write";
    let dir = fresh_dir(fault);
    let batches = drill_batches(3);
    // Durable writes: 1 = base at create, 2 = delta for seq 1 (valid),
    // 3 = delta for seq 2 (torn), 4 = delta for seq 3 (chains onto the torn
    // tip, so recovery must discard it too).
    let faults = Arc::new(FaultPlan::seeded(0xA11).with_torn_write(3));
    let (server, _) = start_server(&dir, Arc::clone(&faults), 64);
    let mut c = client(server.addr());
    let mut detail = String::new();
    let mut run = || -> Result<(bool, usize), String> {
        c.create_tenant("t0", ALGORITHM, SHARDS)
            .map_err(|e| e.to_string())?;
        for (seq, batch) in batches.iter().enumerate() {
            c.ingest("t0", seq as u64, batch)
                .map_err(|e| e.to_string())?;
            c.checkpoint("t0").map_err(|e| e.to_string())?;
        }
        Ok((faults.writes_seen() >= 3, 0))
    };
    let injected = match run() {
        Ok((fired, _)) => fired,
        Err(e) => {
            detail = e;
            false
        }
    };
    // Die without the graceful checkpoint sweep (it would mask the tear).
    server.crash();

    let (server, report) = start_server(&dir, Arc::new(FaultPlan::none()), 64);
    let outcome = recovered_outcome(&report, "t0");
    // The valid chain prefix ends at seq 1: the torn delta and its orphaned
    // successor are both discarded.  But the tear also disabled journal
    // truncation, so the write-ahead journal still holds the acked batches for
    // seqs 1 and 2 — recovery replays them and lands at next_seq 3.
    let recovered = outcome == Some((1, 3, 2));
    let discarded = outcome.map(|(_, _, d)| d).unwrap_or(0);

    let mut c = client(server.addr());
    let mut verify = || -> Result<bool, String> {
        let prefix = served_answers(&mut c, "t0")?;
        let prefix_ok = prefix == twin_answers(twin(&batches).as_ref());
        let (_, duplicate_refused) = replay_suffix(&mut c, "t0", &batches, 3)?;
        let full = served_answers(&mut c, "t0")?;
        let full_ok = full == twin_answers(twin(&batches).as_ref());
        if detail.is_empty() {
            detail = format!(
                "tore write #3; chain fell back to seq 1 discarding \
                 {discarded}, journal replay restored the acked tail; \
                 full twin before replay {prefix_ok}, after {full_ok}"
            );
        }
        Ok(prefix_ok && full_ok && duplicate_refused)
    };
    let answers_match = match verify() {
        Ok(ok) => ok,
        Err(e) => {
            detail = e;
            false
        }
    };
    server.stop().expect("graceful stop");
    let _ = std::fs::remove_dir_all(&dir);
    DrillRow {
        fault,
        injected,
        recovered,
        answers_match,
        discarded,
        detail,
    }
}

/// Drill: the newest delta file on disk is bit-flipped after a clean shutdown.
/// The chain checksum must catch it and recovery must fall back one checkpoint.
fn drill_corrupt_tip() -> DrillRow {
    let fault = "corrupt_chain_tip";
    let dir = fresh_dir(fault);
    let batches = drill_batches(3);
    let (server, _) = start_server(&dir, Arc::new(FaultPlan::none()), 64);
    let mut c = client(server.addr());
    let mut detail = String::new();
    let mut run = || -> Result<(), String> {
        c.create_tenant("t0", ALGORITHM, SHARDS)
            .map_err(|e| e.to_string())?;
        for (seq, batch) in batches.iter().enumerate() {
            c.ingest("t0", seq as u64, batch)
                .map_err(|e| e.to_string())?;
            c.checkpoint("t0").map_err(|e| e.to_string())?;
        }
        Ok(())
    };
    let mut injected = run().map_err(|e| detail = e).is_ok();
    server.stop().expect("graceful stop");

    // Corrupt the newest delta file in place (the chain tip).
    injected = injected
        && (|| -> Option<()> {
            let tenant_dir = dir.join("t0");
            let mut deltas: Vec<PathBuf> = std::fs::read_dir(&tenant_dir)
                .ok()?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("delta-"))
                })
                .collect();
            deltas.sort();
            let tip = deltas.pop()?;
            let mut bytes = std::fs::read(&tip).ok()?;
            let at = flip_one_byte(&mut bytes, 0xBAD_71B);
            std::fs::write(&tip, &bytes).ok()?;
            detail = format!(
                "flipped byte {at} of {:?}",
                tip.file_name().unwrap_or_default()
            );
            Some(())
        })()
        .is_some();

    let (server, report) = start_server(&dir, Arc::new(FaultPlan::none()), 64);
    let outcome = recovered_outcome(&report, "t0");
    let recovered = outcome == Some((2, 2, 1));
    let discarded = outcome.map(|(_, _, d)| d).unwrap_or(0);

    let mut c = client(server.addr());
    let mut verify = || -> Result<bool, String> {
        let prefix = served_answers(&mut c, "t0")?;
        let prefix_ok = prefix == twin_answers(twin(&batches[..2]).as_ref());
        let (_, duplicate_refused) = replay_suffix(&mut c, "t0", &batches, 2)?;
        let full = served_answers(&mut c, "t0")?;
        let full_ok = full == twin_answers(twin(&batches).as_ref());
        detail = format!(
            "{detail}; recovered to seq 2 discarding {discarded}; \
             prefix twin {prefix_ok}, replay+full twin {full_ok}"
        );
        Ok(prefix_ok && full_ok && duplicate_refused)
    };
    let answers_match = match verify() {
        Ok(ok) => ok,
        Err(e) => {
            detail = e;
            false
        }
    };
    server.stop().expect("graceful stop");
    let _ = std::fs::remove_dir_all(&dir);
    DrillRow {
        fault,
        injected,
        recovered,
        answers_match,
        discarded,
        detail,
    }
}

/// Drill: the server is killed mid-ingest (crash frame: no goodbye, no
/// checkpoint sweep).  The delta chain only holds the checkpointed prefix, but
/// the write-ahead journal holds every acked batch — the restart must answer
/// like a twin that saw all of them, with no client replay at all.
fn drill_crash_mid_ingest() -> DrillRow {
    let fault = "crash_mid_ingest";
    let dir = fresh_dir(fault);
    let batches = drill_batches(4);
    let faults = Arc::new(FaultPlan::seeded(0xDEAD).with_crash_frame());
    let (server, _) = start_server(&dir, Arc::clone(&faults), 64);
    let mut c = client(server.addr());
    let mut detail = String::new();
    let mut run = || -> Result<(), String> {
        c.create_tenant("t0", ALGORITHM, SHARDS)
            .map_err(|e| e.to_string())?;
        // Two batches checkpointed into the chain, two only in the journal.
        for seq in 0..2u64 {
            c.ingest("t0", seq, &batches[seq as usize])
                .map_err(|e| e.to_string())?;
        }
        c.checkpoint("t0").map_err(|e| e.to_string())?;
        for seq in 2..4u64 {
            c.ingest("t0", seq, &batches[seq as usize])
                .map_err(|e| e.to_string())?;
        }
        Ok(())
    };
    let injected = run().map_err(|e| detail = e).is_ok();
    c.crash();
    server.join();

    let (server, report) = start_server(&dir, Arc::new(FaultPlan::none()), 64);
    let outcome = recovered_outcome(&report, "t0");
    // Nothing on disk is damaged: the chain restores the checkpointed prefix
    // (epoch 2, next_seq 2) and the journal replays the two batches that were
    // acked after the last checkpoint, landing at next_seq 4.
    let recovered = outcome == Some((2, 4, 0));
    let discarded = outcome.map(|(_, _, d)| d).unwrap_or(0);

    let mut c = client(server.addr());
    let mut verify = || -> Result<bool, String> {
        let prefix = served_answers(&mut c, "t0")?;
        let prefix_ok = prefix == twin_answers(twin(&batches).as_ref());
        let (_, duplicate_refused) = replay_suffix(&mut c, "t0", &batches, 4)?;
        let full = served_answers(&mut c, "t0")?;
        let full_ok = full == twin_answers(twin(&batches).as_ref());
        if detail.is_empty() {
            detail = format!(
                "crashed holding 2 journaled-but-uncheckpointed batches; \
                 restart answered as the full 4-batch twin ({prefix_ok}) with \
                 no client replay; duplicates still refused ({full_ok})"
            );
        }
        Ok(prefix_ok && full_ok && duplicate_refused)
    };
    let answers_match = match verify() {
        Ok(ok) => ok,
        Err(e) => {
            detail = e;
            false
        }
    };
    server.stop().expect("graceful stop");
    let _ = std::fs::remove_dir_all(&dir);
    DrillRow {
        fault,
        injected,
        recovered,
        answers_match,
        discarded,
        detail,
    }
}

/// Drill: every connection is dropped after three answered frames, *after* the
/// request took effect but *before* the response — the worst case for a
/// retrying client.  Retries plus sequence numbers must converge to
/// exactly-once.
fn drill_dropped_connections() -> DrillRow {
    let fault = "dropped_connections";
    let dir = fresh_dir(fault);
    let batches = drill_batches(6);
    let faults = Arc::new(FaultPlan::seeded(0xD0D0).with_drop_after_frames(3));
    let (server, _) = start_server(&dir, Arc::clone(&faults), 64);
    let mut c = client(server.addr());
    let mut detail = String::new();
    let mut run = || -> Result<(), String> {
        c.create_tenant("t0", ALGORITHM, SHARDS)
            .map_err(|e| e.to_string())?;
        for (seq, batch) in batches.iter().enumerate() {
            let _ = c
                .ingest("t0", seq as u64, batch)
                .map_err(|e| format!("seq {seq}: {e}"))?;
        }
        Ok(())
    };
    let ingest_ok = run().map_err(|e| detail = e).is_ok();
    // The fault fired iff connections actually died: more than the one initial
    // connect, and at least one retried batch acked as a duplicate.
    let injected = ingest_ok && c.counters.reconnects > 1 && c.counters.duplicate_acks >= 1;
    let recovered = ingest_ok && !server.stopped();

    let mut verify = || -> Result<bool, String> {
        let cursor = c.stats("t0").map_err(|e| format!("stats: {e}"))?.next_seq;
        let served = served_answers(&mut c, "t0")?;
        let full_ok = served == twin_answers(twin(&batches).as_ref());
        if detail.is_empty() {
            detail = format!(
                "{} reconnects, {} duplicate acks, cursor {cursor}; \
                 full twin {full_ok}",
                c.counters.reconnects, c.counters.duplicate_acks
            );
        }
        Ok(full_ok && cursor == batches.len() as u64)
    };
    let answers_match = match verify() {
        Ok(ok) => ok,
        Err(e) => {
            detail = e;
            false
        }
    };
    server.stop().expect("graceful stop");
    let _ = std::fs::remove_dir_all(&dir);
    DrillRow {
        fault,
        injected,
        recovered,
        answers_match,
        discarded: 0,
        detail,
    }
}

/// Drill: ingest stalls under the tenant lock while the admission bound is 1.
/// Concurrent writers must be shed with typed `Overloaded` (absorbed by client
/// backoff), readers must stay live off the cached view, and every batch must
/// still land exactly once.
fn drill_overload() -> DrillRow {
    let fault = "overload_shedding";
    let dir = fresh_dir(fault);
    let batches = drill_batches(6);
    let faults = Arc::new(FaultPlan::seeded(0x0DD).with_stall_ingest(Duration::from_millis(40)));
    let (server, _) = start_server(&dir, Arc::clone(&faults), 1);
    let addr = server.addr();
    let patient = ClientConfig {
        retries: 24,
        backoff: Duration::from_millis(2),
        ..ClientConfig::default()
    };

    let mut detail = String::new();
    let mut setup = client(addr);
    let setup_ok = setup
        .create_tenant("ta", ALGORITHM, SHARDS)
        .and_then(|()| setup.create_tenant("tb", ALGORITHM, SHARDS))
        .map_err(|e| detail = e.to_string())
        .is_ok();

    let mut overloaded = 0u64;
    let mut writer_errors = Vec::new();
    let mut reads_ok = 0usize;
    let mut reads_failed = 0usize;
    if setup_ok {
        std::thread::scope(|scope| {
            let writers: Vec<_> = ["ta", "tb"]
                .into_iter()
                .map(|tenant| {
                    let batches = &batches;
                    scope.spawn(move || {
                        let mut c = Client::new(addr, patient);
                        for (seq, batch) in batches.iter().enumerate() {
                            if let Err(e) = c.ingest(tenant, seq as u64, batch) {
                                return (c.counters, Some(format!("{tenant} seq {seq}: {e}")));
                            }
                        }
                        (c.counters, None)
                    })
                })
                .collect();
            // Reads during the stall storm: the cached view must answer without
            // queueing behind the stalled ingest path.
            let mut reader = client(addr);
            for _ in 0..20 {
                match reader.query("ta", Query::Point(0)) {
                    Ok(_) => reads_ok += 1,
                    Err(_) => reads_failed += 1,
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            for w in writers {
                let (counters, error) = w.join().expect("writer thread");
                overloaded += counters.overloaded;
                if let Some(e) = error {
                    writer_errors.push(e);
                }
            }
        });
    }
    let injected = setup_ok && overloaded >= 1;
    let recovered = setup_ok && writer_errors.is_empty() && reads_failed == 0 && reads_ok == 20;

    let mut verify = || -> Result<bool, String> {
        let expected = twin_answers(twin(&batches).as_ref());
        let mut c = client(addr);
        let mut all_ok = true;
        for tenant in ["ta", "tb"] {
            let cursor = c
                .stats(tenant)
                .map_err(|e| format!("{tenant} stats: {e}"))?
                .next_seq;
            let served = served_answers(&mut c, tenant)?;
            all_ok &= served == expected && cursor == batches.len() as u64;
        }
        if detail.is_empty() {
            detail = format!(
                "{overloaded} sheds absorbed by backoff; {reads_ok}/20 reads \
                 live during the stall; both tenants match the full twin: {all_ok}"
            );
        }
        Ok(all_ok)
    };
    let answers_match = match verify() {
        Ok(ok) => ok,
        Err(e) => {
            if !writer_errors.is_empty() {
                detail = writer_errors.join("; ");
            } else {
                detail = e;
            }
            false
        }
    };
    server.stop().expect("graceful stop");
    let _ = std::fs::remove_dir_all(&dir);
    DrillRow {
        fault,
        injected,
        recovered,
        answers_match,
        discarded: 0,
        detail,
    }
}

/// Runs the full fault matrix (the matrix is scale-independent: every class is
/// always drilled; only the sweep scales).
pub fn fault_matrix() -> (Table, Vec<DrillRow>) {
    let rows = vec![
        drill_torn_write(),
        drill_corrupt_tip(),
        drill_crash_mid_ingest(),
        drill_dropped_connections(),
        drill_overload(),
    ];
    let mut table = Table::new(
        "F14 — fault matrix (every class must end in verified-exact recovery)",
        &[
            "fault",
            "injected",
            "recovered",
            "answers match",
            "discarded",
        ],
    );
    for r in &rows {
        table.row(vec![
            r.fault.to_string(),
            r.injected.to_string(),
            r.recovered.to_string(),
            r.answers_match.to_string(),
            r.discarded.to_string(),
        ]);
    }
    (table, rows)
}

/// Every failure class the crate claims to survive.
pub const FAULT_CLASSES: [&str; 5] = [
    "torn_checkpoint_write",
    "corrupt_chain_tip",
    "crash_mid_ingest",
    "dropped_connections",
    "overload_shedding",
];

/// The matrix's law: all five classes drilled, every drill injected its fault,
/// recovered as typed, and matched its twins exactly.
pub fn matrix_check(rows: &[DrillRow]) -> Result<(), String> {
    for class in FAULT_CLASSES {
        let Some(row) = rows.iter().find(|r| r.fault == class) else {
            return Err(format!("fault class {class:?} was never drilled"));
        };
        if !row.injected {
            return Err(format!(
                "drill {class:?} did not demonstrably inject its fault: {}",
                row.detail
            ));
        }
        if !row.recovered {
            return Err(format!(
                "drill {class:?} did not recover as typed: {}",
                row.detail
            ));
        }
        if !row.answers_match {
            return Err(format!(
                "drill {class:?} diverged from its registry twin: {}",
                row.detail
            ));
        }
    }
    Ok(())
}

// --- JSON record --------------------------------------------------------------

fn sanitize(text: &str) -> String {
    text.chars()
        .map(|c| match c {
            '"' | '\\' | '[' | ']' => '_',
            c if c.is_control() => '_',
            c => c,
        })
        .collect()
}

/// Serializes the record written to `BENCH_serve_net.json`.
pub fn to_json(
    scale: Scale,
    sweep: &[SweepRow],
    matrix: &[DrillRow],
    trajectory: &[String],
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"serve_net\",\n");
    out.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        scale.pick("Quick", "Full")
    ));
    out.push_str(&format!("  \"algorithm\": \"{ALGORITHM}\",\n"));
    out.push_str(&format!("  \"shards\": {SHARDS},\n"));
    out.push_str("  \"sweep\": [\n");
    for (i, r) in sweep.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"connections\": {}, \"batch_size\": {}, \"batches\": {}, \
             \"items\": {}, \"items_per_sec\": {:.0}, \"p50_us\": {}, \
             \"p99_us\": {}, \"retries\": {}, \"reconnects\": {}, \"clean\": {}}}{}\n",
            r.connections,
            r.batch_size,
            r.batches,
            r.items,
            r.items_per_sec,
            r.p50_us,
            r.p99_us,
            r.retries,
            r.reconnects,
            r.clean,
            if i + 1 < sweep.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"fault_matrix\": [\n");
    for (i, r) in matrix.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"fault\": \"{}\", \"injected\": {}, \"recovered\": {}, \
             \"answers_match\": {}, \"discarded\": {}, \"detail\": \"{}\"}}{}\n",
            r.fault,
            r.injected,
            r.recovered,
            r.answers_match,
            r.discarded,
            sanitize(&r.detail),
            if i + 1 < matrix.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"trajectory\": [\n");
    for (i, entry) in trajectory.iter().enumerate() {
        out.push_str(&format!(
            "    {entry}{}\n",
            if i + 1 < trajectory.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

/// One trajectory entry (headline throughput cell + the matrix verdict), same
/// shape as the throughput/serve records.
pub fn trajectory_entry(
    date: &str,
    label: &str,
    scale: Scale,
    sweep: &[SweepRow],
    matrix: &[DrillRow],
) -> String {
    let (date, label) = (sanitize(date), sanitize(label));
    let peak = sweep
        .iter()
        .max_by(|a, b| a.items_per_sec.total_cmp(&b.items_per_sec));
    let peak_ips = peak
        .map(|r| format!("{:.0}", r.items_per_sec))
        .unwrap_or_else(|| "null".to_string());
    let peak_p99 = peak
        .map(|r| r.p99_us.to_string())
        .unwrap_or_else(|| "null".to_string());
    let passed = matrix.iter().filter(|r| r.passed()).count();
    format!(
        "{{\"date\": \"{date}\", \"label\": \"{label}\", \"scale\": \"{}\", \
         \"peak_items_per_sec\": {peak_ips}, \"peak_cell_p99_us\": {peak_p99}, \
         \"faults_drilled\": {}, \"faults_recovered_exactly\": {passed}}}",
        scale.pick("Quick", "Full"),
        matrix.len(),
    )
}

/// Structural check of the emitted JSON (a malformed record fails CI instead of
/// silently rotting).
pub fn schema_check(json: &str) -> Result<(), String> {
    for key in [
        "\"experiment\": \"serve_net\"",
        "\"scale\":",
        "\"algorithm\":",
        "\"sweep\":",
        "\"items_per_sec\":",
        "\"p99_us\":",
        "\"clean\": true",
        "\"fault_matrix\":",
        "\"injected\": true",
        "\"recovered\": true",
        "\"answers_match\": true",
        "\"trajectory\":",
        "\"date\":",
        "\"faults_recovered_exactly\":",
    ] {
        if !json.contains(key) {
            return Err(format!("BENCH_serve_net.json is missing {key}"));
        }
    }
    for class in FAULT_CLASSES {
        if !json.contains(&format!("\"fault\": \"{class}\"")) {
            return Err(format!("BENCH_serve_net.json is missing drill {class:?}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_saturation_sweep_verifies_every_cell() {
        let (table, rows) = run(Scale::Quick);
        let (connections, batch_sizes, _) = sweep_grid(Scale::Quick);
        assert_eq!(rows.len(), connections.len() * batch_sizes.len());
        assert_eq!(table.len(), rows.len());
        sweep_check(&rows).expect("every sweep cell must verify clean");
    }

    #[test]
    fn fault_matrix_every_class_recovers_exactly() {
        let (table, rows) = fault_matrix();
        assert_eq!(rows.len(), FAULT_CLASSES.len());
        assert_eq!(table.len(), rows.len());
        matrix_check(&rows).unwrap_or_else(|e| panic!("fault matrix law: {e}"));
    }

    #[test]
    fn json_record_passes_its_own_schema_check() {
        let sweep = vec![SweepRow {
            connections: 2,
            batch_size: 256,
            batches: 10,
            items: 5120,
            items_per_sec: 123456.0,
            p50_us: 90,
            p99_us: 400,
            retries: 0,
            reconnects: 2,
            clean: true,
        }];
        let matrix: Vec<DrillRow> = FAULT_CLASSES
            .iter()
            .map(|&fault| DrillRow {
                fault,
                injected: true,
                recovered: true,
                answers_match: true,
                discarded: 1,
                detail: "synthetic \"detail\" [with] hostile\nbytes".into(),
            })
            .collect();
        let entry = trajectory_entry("2026-08-08", "unit", Scale::Quick, &sweep, &matrix);
        let json = to_json(Scale::Quick, &sweep, &matrix, std::slice::from_ref(&entry));
        schema_check(&json).expect("schema");
        assert!(entry.contains("\"faults_drilled\": 5"));
        assert!(entry.contains("\"faults_recovered_exactly\": 5"));
        assert!(!json.contains("hostile\nbytes"), "detail sanitized");
        let restored = crate::experiments::throughput::trajectory_inner(&json)
            .expect("trajectory parses back");
        assert_eq!(restored, vec![entry]);
    }

    #[test]
    fn matrix_check_rejects_a_failed_drill() {
        let mut rows: Vec<DrillRow> = FAULT_CLASSES
            .iter()
            .map(|&fault| DrillRow {
                fault,
                injected: true,
                recovered: true,
                answers_match: true,
                discarded: 0,
                detail: String::new(),
            })
            .collect();
        matrix_check(&rows).expect("all-pass matrix");
        rows[2].answers_match = false;
        let err = matrix_check(&rows).expect_err("divergence must fail");
        assert!(err.contains("crash_mid_ingest"), "{err}");
        rows.pop();
        rows[2].answers_match = true;
        let err = matrix_check(&rows).expect_err("a missing class must fail");
        assert!(err.contains("overload_shedding"), "{err}");
    }
}
