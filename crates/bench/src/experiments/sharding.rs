//! Experiment F11 — sharded parallel execution of mergeable summaries.
//!
//! Splits one Zipfian stream across `S` shards, runs each shard's summary on its own
//! thread over a lean (`Send + Sync`, atomic-counter) tracker, merges the shard
//! summaries, and compares the merged answers and total accounting against a serial
//! run of the same summary:
//!
//! * linear sketches (CountMin, CountSketch) merge *exactly* — identical estimates;
//! * counter summaries (Misra-Gries, SpaceSaving) merge within their additive bounds;
//! * total epochs across shards always equal the stream length, and the state-change
//!   counts add across shards (state frugality survives sharding).

use std::time::Instant;

use fsc_baselines::{CountMin, CountSketch, MisraGries, SpaceSaving};
use fsc_state::{FrequencyEstimator, Mergeable, StateTracker, StreamAlgorithm};
use fsc_streamgen::zipf::zipf_stream;
use fsc_streamgen::FrequencyVector;

use crate::sharded::run_sharded;
use crate::table::{f, Table};
use crate::Scale;

/// Number of shards the experiment uses.
pub const SHARDS: usize = 4;

/// One measured row of the sharding comparison.
#[derive(Debug, Clone)]
pub struct Row {
    /// Summary name.
    pub name: String,
    /// Serial state changes.
    pub serial_state_changes: u64,
    /// Sum of per-shard state changes (excluding the merge epoch).
    pub sharded_state_changes: u64,
    /// Largest |merged − serial| estimate difference over the query items.
    pub max_estimate_diff: f64,
    /// Serial wall-clock for the stream pass, in milliseconds.
    pub serial_ms: f64,
    /// Sharded wall-clock for the parallel pass plus merge, in milliseconds.
    pub sharded_ms: f64,
}

impl Row {
    /// Wall-clock speedup of the sharded pass over the serial pass.
    pub fn speedup(&self) -> f64 {
        if self.sharded_ms > 0.0 {
            self.serial_ms / self.sharded_ms
        } else {
            0.0
        }
    }
}

fn compare<A, FSerial, FShard>(
    name: &str,
    stream: &[u64],
    candidates: &[u64],
    make_serial: FSerial,
    make_shard: FShard,
) -> Row
where
    A: StreamAlgorithm + FrequencyEstimator + Mergeable + Send,
    FSerial: Fn() -> A,
    FShard: Fn(usize) -> A + Sync,
{
    let start = Instant::now();
    let mut serial = make_serial();
    serial.process_batch(stream);
    let serial_ms = start.elapsed().as_secs_f64() * 1e3;

    let start = Instant::now();
    let outcome = run_sharded(stream, SHARDS, make_shard);
    let sharded_ms = start.elapsed().as_secs_f64() * 1e3;

    let max_estimate_diff = candidates
        .iter()
        .map(|&c| (outcome.merged.estimate(c) - serial.estimate(c)).abs())
        .fold(0.0, f64::max);
    Row {
        name: name.to_string(),
        serial_state_changes: serial.report().state_changes,
        sharded_state_changes: outcome.combined_report.state_changes,
        max_estimate_diff,
        serial_ms,
        sharded_ms,
    }
}

/// Runs the sharding comparison and returns the rows.
pub fn run(scale: Scale) -> (Table, Vec<Row>) {
    let n = scale.pick(1 << 12, 1 << 16);
    let m = scale.pick(8, 16) * n;
    let stream = zipf_stream(n, m, 1.1, 77);
    let truth = FrequencyVector::from_stream(&stream);
    let candidates: Vec<u64> = truth.top_k(64).into_iter().map(|(i, _)| i).collect();
    let k = 256;
    let (width, depth, sketch_seed) = (scale.pick(512, 2048), 4, 1234);

    // Serial baseline and shards both run on the lean tracker: the wall-clock columns
    // then isolate sharding itself rather than mixing in the full-vs-lean accounting
    // overhead (measured separately by the `tracker_backends` bench).  State-change
    // counts are identical under either backend.
    let rows = vec![
        compare(
            "CountMin",
            &stream,
            &candidates,
            || CountMin::with_tracker(&StateTracker::lean(), width, depth, sketch_seed),
            // Linear sketches shard with the *same* seed (identical hash functions are
            // what make the merge exact).
            |_| CountMin::with_tracker(&StateTracker::lean(), width, depth, sketch_seed),
        ),
        compare(
            "CountSketch",
            &stream,
            &candidates,
            || CountSketch::with_tracker(&StateTracker::lean(), width, depth + 1, sketch_seed),
            |_| CountSketch::with_tracker(&StateTracker::lean(), width, depth + 1, sketch_seed),
        ),
        compare(
            "MisraGries",
            &stream,
            &candidates,
            || MisraGries::with_tracker(&StateTracker::lean(), k),
            |_| MisraGries::with_tracker(&StateTracker::lean(), k),
        ),
        compare(
            "SpaceSaving",
            &stream,
            &candidates,
            || SpaceSaving::with_tracker(&StateTracker::lean(), k),
            |_| SpaceSaving::with_tracker(&StateTracker::lean(), k),
        ),
    ];

    let mut table = Table::new(
        &format!(
            "Sharding — merged vs serial summaries, Zipf(1.1), n = {n}, m = {m}, {SHARDS} shards"
        ),
        &[
            "summary",
            "serial changes",
            "sharded changes",
            "max abs Δestimate",
            "serial ms",
            "sharded ms",
            "speedup",
        ],
    );
    for r in &rows {
        table.row(vec![
            r.name.clone(),
            r.serial_state_changes.to_string(),
            r.sharded_state_changes.to_string(),
            f(r.max_estimate_diff),
            f(r.serial_ms),
            f(r.sharded_ms),
            f(r.speedup()),
        ]);
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sketch_merges_are_exact_and_counter_merges_are_bounded() {
        let (table, rows) = run(Scale::Quick);
        assert_eq!(rows.len(), 4);
        assert!(!table.is_empty());
        for r in &rows[..2] {
            assert_eq!(
                r.max_estimate_diff, 0.0,
                "{} is a linear sketch: sharded merge must be exact",
                r.name
            );
        }
        // Counter summaries: the merged estimate may differ from the serial run, but
        // both carry the same additive guarantee; at quick scale the top items should
        // stay within the m/(k+1)-style bound of each other (twice the one-sided bound).
        let m = Scale::Quick.pick(8, 16) * (1 << 12) as usize;
        for r in &rows[2..] {
            assert!(
                r.max_estimate_diff <= 2.0 * m as f64 / 257.0,
                "{}: merged vs serial diff {} exceeds the additive bound",
                r.name,
                r.max_estimate_diff
            );
        }
        for r in &rows {
            assert!(
                r.sharded_state_changes > 0 && r.serial_state_changes > 0,
                "accounting must survive sharding"
            );
        }
    }
}
