//! Experiment F6 — the Section 1.4 counterexample stream.
//!
//! Pick-and-drop style samplers ([BO13, BKSV14]) compare candidate counts *locally*
//! and therefore drop the true `L_2` heavy hitter in favour of pseudo-heavy items that
//! look larger inside a single block; the paper's time-bucketed counter maintenance
//! keeps the heavy hitter.  We replay the constructed stream with several seeds and
//! report how often each algorithm ends up reporting the heavy hitter.

use fsc::{Params, SampleAndHold};
use fsc_baselines::PickAndDrop;
use fsc_state::{FrequencyEstimator, StreamAlgorithm};
use fsc_streamgen::blocks::counterexample_stream;

use crate::table::{f, Table};
use crate::Scale;

/// Result of one algorithm on the counterexample workload.
#[derive(Debug, Clone)]
pub struct Row {
    /// Algorithm name.
    pub name: String,
    /// Fraction of seeds for which the true heavy hitter was reported / estimated with
    /// at least 40% of its true frequency.
    pub found_rate: f64,
    /// Mean estimated frequency of the heavy hitter (true value in the table title).
    pub mean_estimate: f64,
    /// Mean state changes.
    pub mean_state_changes: f64,
}

/// Runs the counterexample comparison.
pub fn run(scale: Scale) -> (Table, Vec<Row>) {
    let q = scale.pick(12, 20);
    let trials = scale.pick(3, 7);
    let cx = counterexample_stream(q);
    let m = cx.stream.len();

    let mut ours_found = 0usize;
    let mut ours_estimates = 0.0;
    let mut ours_changes = 0.0;
    let mut pad_found = 0usize;
    let mut pad_estimates = 0.0;
    let mut pad_changes = 0.0;

    for trial in 0..trials {
        let params = Params::new(2.0, 0.3, m, m).with_seed(60 + trial as u64);
        let mut ours = SampleAndHold::standalone(&params);
        ours.process_stream(&cx.stream);
        let est = ours.estimate(cx.heavy_hitter);
        if est >= 0.4 * cx.heavy_freq as f64 {
            ours_found += 1;
        }
        ours_estimates += est;
        ours_changes += ours.report().state_changes as f64;

        let mut pad = PickAndDrop::new(q * q, 8, 90 + trial as u64);
        pad.process_stream(&cx.stream);
        let est = pad.estimate(cx.heavy_hitter);
        if est >= 0.4 * cx.heavy_freq as f64 {
            pad_found += 1;
        }
        pad_estimates += est;
        pad_changes += pad.report().state_changes as f64;
    }

    let rows = vec![
        Row {
            name: "SampleAndHold (this paper)".into(),
            found_rate: ours_found as f64 / trials as f64,
            mean_estimate: ours_estimates / trials as f64,
            mean_state_changes: ours_changes / trials as f64,
        },
        Row {
            name: "PickAndDrop [BO13-style]".into(),
            found_rate: pad_found as f64 / trials as f64,
            mean_estimate: pad_estimates / trials as f64,
            mean_state_changes: pad_changes / trials as f64,
        },
    ];

    let mut table = Table::new(
        &format!(
            "F6 — Section 1.4 counterexample (scale q = {q}, m = {m}, true heavy-hitter frequency = {})",
            cx.heavy_freq
        ),
        &["algorithm", "found rate", "mean estimate of the heavy hitter", "mean state changes"],
    );
    for r in &rows {
        table.row(vec![
            r.name.clone(),
            f(r.found_rate),
            f(r.mean_estimate),
            f(r.mean_state_changes),
        ]);
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_bucketed_maintenance_wins_where_pick_and_drop_fails() {
        let (_, rows) = run(Scale::Quick);
        let ours = &rows[0];
        let pad = &rows[1];
        assert!(
            ours.found_rate >= 0.65,
            "ours found rate {}",
            ours.found_rate
        );
        assert!(
            pad.found_rate <= 0.35,
            "pick-and-drop found rate {}",
            pad.found_rate
        );
        assert!(ours.mean_estimate > pad.mean_estimate);
    }
}
