//! Experiment F12 — the sharded, checkpointable engine under config-driven
//! scenarios, with full and delta persistence.
//!
//! For every engine-capable registry entry and every scenario in the matrix, two
//! engines ingest the same synthesized stream: a 4-shard engine and a single-shard
//! reference.  At the scenario's checkpoint cadence the sharded engine is
//! checkpointed and a **fresh** engine (simulated crash: new process, constructor
//! state only) is restored from the bytes and takes over the ingest — so every run
//! exercises the snapshot law mid-stream, not just at the end.  At the end the
//! merged shard union is compared against the single-shard reference through the
//! typed [`Query`] API: exact-merge summaries must agree bit-for-bit, bounded-merge
//! summaries within their additive bound.
//!
//! The scenario matrix is a list of [`Scenario`] *config literals* (steady Zipf,
//! drifting hot set, flash-crowd bursts, fully sorted, uniform) — adding a workload
//! is editing that list, not writing a binary.
//!
//! Each scenario also selects a [`CheckpointMode`]: `Full` persists the complete
//! engine checkpoint at every cadence point; `Delta` chains `FSCD` deltas off a base
//! through a [`CheckpointChain`] — failover restores from the chain tip, compaction
//! folds the chain without changing the tip, and a post-run time-travel audit
//! replays every retained cadence epoch with [`CheckpointChain::bytes_at`].  Every
//! cadence point is recorded as a [`CurvePoint`] (checkpoint bytes vs stream
//! length), and [`delta_curves`] sweeps the *entire* 15-algorithm registry
//! standalone, measuring what chained deltas cost against re-persisting the full
//! checkpoint — the paper's thesis as a persistence bill: algorithms with few state
//! changes persist sublinearly, write-heavy baselines do not.

use fsc_engine::{CheckpointMode, EngineConfig, Routing, Scenario, Segment, Workload};
use fsc_state::{Answer, CheckpointChain, Query};
use fsc_streamgen::zipf::zipf_stream;

use crate::registry::{engine_specs, registry, AlgorithmSpec, MakeCtx, Merge};
use crate::table::{f, Table};
use crate::Scale;

/// Number of shards the sharded engine runs.
pub const SHARDS: usize = 4;

/// Checkpoints the standalone [`delta_curves`] sweep takes per algorithm.
pub const CURVE_CHECKPOINTS: usize = 8;

/// Per-cadence-point sample: how many bytes a full checkpoint would have cost at
/// this stream position, and how many the selected persistence mode actually wrote
/// (the base or a chained delta in delta mode; `full_bytes` itself in full mode).
#[derive(Debug, Clone, Copy)]
pub struct CurvePoint {
    /// Stream position (updates ingested) when the checkpoint was taken.
    pub ingested: usize,
    /// Size of the full checkpoint at this point, in bytes.
    pub full_bytes: usize,
    /// Bytes actually persisted at this point under the scenario's mode.
    pub persisted_bytes: usize,
}

/// One measured (algorithm, scenario) cell.
#[derive(Debug, Clone)]
pub struct Row {
    /// Summary name (shard 0's `StreamAlgorithm::name`).
    pub algorithm: String,
    /// Registry id of the summary.
    pub id: &'static str,
    /// Scenario name.
    pub scenario: String,
    /// How the scenario persisted its cadence checkpoints.
    pub mode: CheckpointMode,
    /// Updates ingested.
    pub updates: usize,
    /// Combined state changes across shards.
    pub state_changes: u64,
    /// Checkpoints taken (and failover-restored) during the run.
    pub checkpoints: usize,
    /// Size of the last full engine checkpoint, in bytes.
    pub checkpoint_bytes: usize,
    /// Bytes persisted at the last cadence point (equals `checkpoint_bytes` in full
    /// mode; the last delta's size in delta mode).
    pub delta_bytes: usize,
    /// One sample per cadence point: checkpoint bytes vs stream length.
    pub curve: Vec<CurvePoint>,
    /// Whether every mid-stream failover restore reproduced the pre-crash reports,
    /// every delta-chain tip matched the full checkpoint byte-for-byte, compaction
    /// preserved the tip, and the post-run time-travel audit replayed every
    /// retained cadence epoch exactly.
    pub restore_ok: bool,
    /// Largest |sharded − single| difference over the probe queries.
    pub max_query_diff: f64,
    /// Merge semantics of the summary (exact unions must have zero diff).
    pub merge: Merge,
}

/// One algorithm's standalone checkpoint-bytes-vs-stream-length curve: the full
/// registry ingests one steady Zipf stream, checkpointing [`CURVE_CHECKPOINTS`]
/// times into a [`CheckpointChain`].
#[derive(Debug, Clone)]
pub struct CurveRow {
    /// Registry id.
    pub id: &'static str,
    /// Display name (`StreamAlgorithm::name`).
    pub algorithm: String,
    /// Updates ingested.
    pub updates: usize,
    /// Tracker-audited state changes over the run.
    pub state_changes: u64,
    /// Size of the final full checkpoint, in bytes.
    pub final_full_bytes: usize,
    /// Total bytes the delta chain persisted (base + every delta).
    pub persisted_bytes: usize,
    /// Total bytes a persist-the-full-checkpoint-every-time policy would have
    /// written over the same cadence points.
    pub full_policy_bytes: usize,
    /// One sample per cadence point.
    pub points: Vec<CurvePoint>,
}

impl CurveRow {
    /// Persisted bytes as a fraction of the full-checkpoint-every-time policy —
    /// the delta chain's persistence bill, 1.0 meaning "no better than full".
    pub fn persistence_ratio(&self) -> f64 {
        self.persisted_bytes as f64 / self.full_policy_bytes.max(1) as f64
    }
}

/// The scenario matrix: one engine workload per traffic shape the streamgen layer
/// can synthesize.  Each entry is a plain config literal; the mix deliberately
/// covers both persistence modes (delta chains with and without compaction, plus
/// full checkpoints) so CI exercises every cadence path.
pub fn scenarios(scale: Scale) -> Vec<Scenario> {
    let n = scale.pick(1 << 10, 1 << 14);
    let m = scale.pick(6_000, 120_000);
    let cadence = Some(m / 3);
    let batch = 1_024;
    let seg = |workload, updates| Segment { workload, updates };
    vec![
        Scenario {
            name: "steady-zipf".into(),
            universe: n,
            seed: 41,
            segments: vec![seg(Workload::Zipf { theta: 1.1 }, m)],
            checkpoint_every: cadence,
            checkpoint_mode: CheckpointMode::Delta { compact_every: 0 },
            batch,
        },
        Scenario {
            name: "drifting-hot-set".into(),
            universe: n,
            seed: 42,
            segments: vec![
                seg(
                    Workload::Drift {
                        theta: 1.2,
                        step: (n / 3) as u64,
                    },
                    m / 3,
                ),
                seg(
                    Workload::Drift {
                        theta: 1.2,
                        step: (n / 3) as u64,
                    },
                    m / 3,
                ),
                seg(
                    Workload::Drift {
                        theta: 1.2,
                        step: (n / 3) as u64,
                    },
                    m - 2 * (m / 3),
                ),
            ],
            checkpoint_every: cadence,
            checkpoint_mode: CheckpointMode::Delta { compact_every: 2 },
            batch,
        },
        Scenario {
            name: "flash-crowd-bursts".into(),
            universe: n,
            seed: 43,
            segments: vec![
                seg(Workload::Zipf { theta: 1.0 }, m / 2),
                seg(
                    Workload::Bursty {
                        theta: 1.3,
                        burst: 32,
                    },
                    m - m / 2,
                ),
            ],
            checkpoint_every: cadence,
            checkpoint_mode: CheckpointMode::Full,
            batch,
        },
        Scenario {
            name: "sorted-adversarial".into(),
            universe: n,
            seed: 44,
            segments: vec![seg(Workload::Sorted { theta: 1.0 }, m)],
            checkpoint_every: cadence,
            checkpoint_mode: CheckpointMode::Delta { compact_every: 0 },
            batch,
        },
        Scenario {
            name: "uniform".into(),
            universe: n,
            seed: 45,
            segments: vec![seg(Workload::Uniform, m)],
            checkpoint_every: cadence,
            checkpoint_mode: CheckpointMode::Full,
            batch,
        },
    ]
}

/// Probe queries compared between the sharded union and the single-shard
/// reference: point estimates over the densest items plus the moment estimate.
fn probes(universe: usize) -> Vec<Query> {
    let mut out: Vec<Query> = (0..64.min(universe as u64)).map(Query::Point).collect();
    out.push(Query::Moment);
    out.push(Query::Entropy);
    out
}

fn answer_diff(a: &Answer, b: &Answer) -> Option<f64> {
    match (a, b) {
        (Answer::Unsupported, Answer::Unsupported) => None,
        (Answer::Scalar(x), Answer::Scalar(y)) => Some((x - y).abs()),
        _ => Some(f64::INFINITY),
    }
}

/// Display label for a [`CheckpointMode`].
pub fn mode_label(mode: CheckpointMode) -> String {
    match mode {
        CheckpointMode::Full => "full".into(),
        CheckpointMode::Delta { compact_every: 0 } => "delta".into(),
        CheckpointMode::Delta { compact_every } => format!("delta/c{compact_every}"),
    }
}

/// Runs one (spec, scenario) cell.
fn run_cell(spec: &AlgorithmSpec, scenario: &Scenario) -> Row {
    let factory = spec.engine.expect("engine-capable spec");
    let ctx = MakeCtx::new(scenario.universe, scenario.total_updates());
    let config = EngineConfig {
        shards: SHARDS,
        routing: Routing::RoundRobin,
        ..EngineConfig::default()
    };
    let mut engine = factory(&ctx, config);
    let mut single = factory(
        &ctx,
        EngineConfig {
            shards: 1,
            ..config
        },
    );

    let stream = scenario.stream();
    let mut checkpoints = 0usize;
    let mut checkpoint_bytes = 0usize;
    let mut delta_bytes = 0usize;
    let mut restore_ok = true;
    let mut since_checkpoint = 0usize;
    let mut ingested = 0usize;
    let mut curve: Vec<CurvePoint> = Vec::new();
    // Delta mode: the live chain plus every (epoch, full checkpoint) pair taken so
    // far, kept for the post-run time-travel audit.
    let mut chain: Option<CheckpointChain> = None;
    let mut history: Vec<(u64, Vec<u8>)> = Vec::new();
    for batch in stream.chunks(scenario.batch.max(1)) {
        engine.ingest(batch);
        single.ingest(batch);
        ingested += batch.len();
        since_checkpoint += batch.len();
        if let Some(cadence) = scenario.checkpoint_every {
            if since_checkpoint >= cadence {
                since_checkpoint = 0;
                // Checkpoint, simulate a crash, and fail over onto a fresh engine.
                let bytes = engine.checkpoint();
                checkpoint_bytes = bytes.len();
                checkpoints += 1;
                let before = engine.report();
                let persisted = match scenario.checkpoint_mode {
                    CheckpointMode::Full => bytes.len(),
                    CheckpointMode::Delta { compact_every } => {
                        // The engine's delta epoch clock is its ingest position.
                        let epoch = ingested as u64;
                        let persisted = match chain.as_mut() {
                            None => {
                                chain = Some(
                                    CheckpointChain::new(bytes.clone(), epoch)
                                        .expect("engine checkpoint is a valid base"),
                                );
                                bytes.len()
                            }
                            Some(c) => c.record(&bytes, epoch).expect("record delta").delta_bytes,
                        };
                        let c = chain.as_mut().expect("chain exists");
                        // Law: base + deltas reconstructs the full checkpoint.
                        restore_ok &= c.tip_bytes() == &bytes[..];
                        history.push((epoch, bytes.clone()));
                        if compact_every > 0 && c.len() >= compact_every {
                            // Compaction folds the chain but must not move the tip.
                            let tip = c.tip_bytes().to_vec();
                            c.compact();
                            restore_ok &= c.is_empty() && c.tip_bytes() == &tip[..];
                        }
                        persisted
                    }
                };
                delta_bytes = persisted;
                curve.push(CurvePoint {
                    ingested,
                    full_bytes: bytes.len(),
                    persisted_bytes: persisted,
                });
                // Failover source: the durable representation — the chain tip in
                // delta mode, the raw checkpoint otherwise.
                let source: Vec<u8> = match &chain {
                    Some(c) => c.tip_bytes().to_vec(),
                    None => bytes.clone(),
                };
                let mut fresh = factory(&ctx, config);
                restore_ok &= fresh.restore_from(&source).is_ok();
                restore_ok &= fresh.report() == before;
                restore_ok &= fresh.checkpoint() == bytes;
                engine = fresh;
            }
        }
    }

    // Time-travel audit: every cadence epoch still inside the chain's retained
    // window must replay to exactly the full checkpoint taken there (compaction
    // legitimately forgets epochs before the current base).
    if let Some(c) = &chain {
        for (epoch, full) in &history {
            if *epoch < c.base_epoch() {
                continue;
            }
            match c.bytes_at(*epoch) {
                Ok((replayed, at)) => restore_ok &= at == *epoch && replayed == *full,
                Err(_) => restore_ok = false,
            }
        }
    }

    let probes = probes(scenario.universe);
    // One merged view per engine for the whole probe set (query_many), not one
    // restore-and-merge pass per probe.
    let sharded_answers = engine.query_many(&probes).expect("merged view");
    let reference_answers = single.query_many(&probes).expect("merged view");
    let mut max_query_diff = 0.0f64;
    for (sharded, reference) in sharded_answers.iter().zip(&reference_answers) {
        if let Some(diff) = answer_diff(sharded, reference) {
            max_query_diff = max_query_diff.max(diff);
        }
    }

    Row {
        algorithm: engine.algorithm(),
        id: spec.id,
        scenario: scenario.name.clone(),
        mode: scenario.checkpoint_mode,
        updates: stream.len(),
        state_changes: engine.report().state_changes,
        checkpoints,
        checkpoint_bytes,
        delta_bytes,
        curve,
        restore_ok,
        max_query_diff,
        merge: spec.merge,
    }
}

/// Runs the full (engine-capable algorithms × scenarios) matrix.
pub fn run(scale: Scale) -> (Table, Vec<Row>) {
    let scenario_list = scenarios(scale);
    let mut rows = Vec::new();
    for spec in engine_specs() {
        for scenario in &scenario_list {
            rows.push(run_cell(&spec, scenario));
        }
    }

    let mut table = Table::new(
        &format!(
            "F12 — sharded engine ({SHARDS} shards) vs single shard across scenarios, \
             with mid-stream checkpoint/failover"
        ),
        &[
            "algorithm",
            "scenario",
            "mode",
            "updates",
            "state changes",
            "checkpoints",
            "ckpt bytes",
            "last Δ bytes",
            "restore ok",
            "max |Δquery|",
        ],
    );
    for r in &rows {
        table.row(vec![
            r.algorithm.clone(),
            r.scenario.clone(),
            mode_label(r.mode),
            r.updates.to_string(),
            r.state_changes.to_string(),
            r.checkpoints.to_string(),
            r.checkpoint_bytes.to_string(),
            r.delta_bytes.to_string(),
            r.restore_ok.to_string(),
            f(r.max_query_diff),
        ]);
    }
    (table, rows)
}

/// Sweeps the **entire** 15-algorithm registry standalone: each instance ingests
/// the same steady Zipf stream, checkpointing [`CURVE_CHECKPOINTS`] times into a
/// [`CheckpointChain`], and each cadence point records full-vs-persisted bytes.
/// The resulting curves are the checkpoint-bytes-vs-stream-length record in
/// `BENCH_engine.json`.
pub fn delta_curves(scale: Scale) -> Vec<CurveRow> {
    let n = scale.pick(1 << 10, 1 << 14);
    let m = scale.pick(6_000, 120_000);
    let cadence = m / CURVE_CHECKPOINTS;
    let stream = zipf_stream(n, m, 1.1, 17);
    let ctx = MakeCtx::new(n, m);
    registry()
        .iter()
        .map(|spec| {
            let mut alg = (spec.snapshot)(&ctx);
            let mut chain: Option<CheckpointChain> = None;
            let mut points = Vec::with_capacity(CURVE_CHECKPOINTS);
            let mut persisted_bytes = 0usize;
            let mut full_policy_bytes = 0usize;
            let mut ingested = 0usize;
            let mut final_full_bytes = 0usize;
            for chunk in stream.chunks(cadence.max(1)) {
                alg.process_stream(chunk);
                ingested += chunk.len();
                let full = alg.checkpoint();
                let epoch = alg.report().epochs;
                let persisted = match chain.as_mut() {
                    None => {
                        chain = Some(
                            CheckpointChain::new(full.clone(), epoch)
                                .expect("checkpoint is a valid base"),
                        );
                        full.len()
                    }
                    Some(c) => c.record(&full, epoch).expect("record delta").delta_bytes,
                };
                let c = chain.as_ref().expect("chain exists");
                assert_eq!(
                    c.tip_bytes(),
                    &full[..],
                    "{}: base + deltas must reconstruct the full checkpoint",
                    spec.id
                );
                persisted_bytes += persisted;
                full_policy_bytes += full.len();
                final_full_bytes = full.len();
                points.push(CurvePoint {
                    ingested,
                    full_bytes: full.len(),
                    persisted_bytes: persisted,
                });
            }
            CurveRow {
                id: spec.id,
                algorithm: alg.name().to_string(),
                updates: ingested,
                state_changes: alg.report().state_changes,
                final_full_bytes,
                persisted_bytes,
                full_policy_bytes,
                points,
            }
        })
        .collect()
}

/// Renders the curve sweep as a table (printed by `fig_engine` next to the matrix).
pub fn curves_table(rows: &[CurveRow]) -> Table {
    let mut table = Table::new(
        &format!(
            "F12 — checkpoint bytes vs stream length ({CURVE_CHECKPOINTS} delta-chained \
             checkpoints per algorithm, steady Zipf)"
        ),
        &[
            "algorithm",
            "updates",
            "state changes",
            "full ckpt bytes",
            "persisted bytes",
            "full-policy bytes",
            "persist ratio",
        ],
    );
    for r in rows {
        table.row(vec![
            r.algorithm.clone(),
            r.updates.to_string(),
            r.state_changes.to_string(),
            r.final_full_bytes.to_string(),
            r.persisted_bytes.to_string(),
            r.full_policy_bytes.to_string(),
            f(r.persistence_ratio()),
        ]);
    }
    table
}

/// Fails if any cell violated the engine's laws: every mid-stream failover must
/// reproduce the pre-crash engine (in delta mode: from the chain tip, with the
/// compaction and time-travel audits folded in), exact-merge unions must answer
/// identically to the single-shard reference, and no delta may exceed its full
/// checkpoint by more than the format overhead.  `fig_engine` (and CI through it)
/// runs this after every sweep.
pub fn equivalence_check(rows: &[Row]) -> Result<(), String> {
    for r in rows {
        if !r.restore_ok {
            return Err(format!(
                "{} on {}: checkpoint/failover did not reproduce the engine",
                r.algorithm, r.scenario
            ));
        }
        if r.merge == Merge::Exact && r.max_query_diff != 0.0 {
            return Err(format!(
                "{} on {}: exact-merge union diverged from the single shard by {}",
                r.algorithm, r.scenario, r.max_query_diff
            ));
        }
        if r.checkpoints == 0 {
            return Err(format!(
                "{} on {}: scenario took no checkpoints — the failover path went untested",
                r.algorithm, r.scenario
            ));
        }
        if r.curve.len() != r.checkpoints {
            return Err(format!(
                "{} on {}: {} checkpoints but {} curve points",
                r.algorithm,
                r.scenario,
                r.checkpoints,
                r.curve.len()
            ));
        }
        for p in &r.curve {
            // FSCD guarantees delta ≤ full + DELTA_OVERHEAD + id; 512 is a slack
            // bound over both modes.
            if p.persisted_bytes > p.full_bytes + 512 {
                return Err(format!(
                    "{} on {}: persisted {} bytes at position {} for a {}-byte checkpoint",
                    r.algorithm, r.scenario, p.persisted_bytes, p.ingested, p.full_bytes
                ));
            }
        }
    }
    Ok(())
}

/// Registry ids of the paper's few-state-change algorithms (the rest of the
/// registry is the write-heavy baseline pool).
pub const FEW_STATE_IDS: [&str; 7] = [
    "sample_and_hold",
    "full_sample_and_hold",
    "few_state_heavy_hitters",
    "fp_estimator",
    "fp_small",
    "entropy_few_state",
    "sparse_recovery",
];

/// CI guard over the standalone curves: the persistence bill must tell the paper's
/// story.  Every point must respect the delta-size bound, at least one
/// few-state-change algorithm must persist **measurably sublinearly** (under half
/// the full-checkpoint-every-time policy), and it must beat the write-heaviest
/// baseline by at least 2× on the persistence ratio.
pub fn curves_check(rows: &[CurveRow]) -> Result<(), String> {
    for r in rows {
        for p in &r.points {
            if p.persisted_bytes > p.full_bytes + 512 {
                return Err(format!(
                    "{}: delta of {} bytes for a {}-byte checkpoint at position {}",
                    r.id, p.persisted_bytes, p.full_bytes, p.ingested
                ));
            }
        }
        if r.points.len() != CURVE_CHECKPOINTS {
            return Err(format!(
                "{}: {} curve points, expected {CURVE_CHECKPOINTS}",
                r.id,
                r.points.len()
            ));
        }
    }
    let best_few_state = rows
        .iter()
        .filter(|r| FEW_STATE_IDS.contains(&r.id))
        .map(|r| r.persistence_ratio())
        .fold(f64::INFINITY, f64::min);
    let worst_baseline = rows
        .iter()
        .filter(|r| !FEW_STATE_IDS.contains(&r.id))
        .map(|r| r.persistence_ratio())
        .fold(0.0f64, f64::max);
    if best_few_state > 0.5 {
        return Err(format!(
            "no few-state-change algorithm persisted sublinearly: best ratio {best_few_state:.3} \
             (want < 0.5 of the full-checkpoint-every-time policy)"
        ));
    }
    if best_few_state * 2.0 > worst_baseline {
        return Err(format!(
            "few-state-change persistence ({best_few_state:.3}) does not clearly beat the \
             write-heaviest baseline ({worst_baseline:.3})"
        ));
    }
    Ok(())
}

fn curve_points_json(points: &[CurvePoint]) -> String {
    let body: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"ingested\": {}, \"full_bytes\": {}, \"persisted_bytes\": {}}}",
                p.ingested, p.full_bytes, p.persisted_bytes
            )
        })
        .collect();
    format!("[{}]", body.join(", "))
}

/// Renders the rows and curves as the `BENCH_engine.json` record (hand-rolled,
/// like the throughput record: the workspace is offline and carries no serde).
pub fn to_json(scale: Scale, rows: &[Row], curves: &[CurveRow]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"engine\",\n");
    out.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        scale.pick("Quick", "Full")
    ));
    out.push_str(&format!("  \"shards\": {SHARDS},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"algorithm\": \"{}\", \"id\": \"{}\", \"scenario\": \"{}\", \
             \"mode\": \"{}\", \"updates\": {}, \"state_changes\": {}, \"checkpoints\": {}, \
             \"checkpoint_bytes\": {}, \"delta_bytes\": {}, \"restore_ok\": {}, \
             \"max_query_diff\": {:.6}, \"merge\": \"{:?}\", \"curve\": {}}}{}\n",
            r.algorithm,
            r.id,
            r.scenario,
            mode_label(r.mode),
            r.updates,
            r.state_changes,
            r.checkpoints,
            r.checkpoint_bytes,
            r.delta_bytes,
            r.restore_ok,
            r.max_query_diff,
            r.merge,
            curve_points_json(&r.curve),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"curves\": [\n");
    for (i, r) in curves.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"algorithm\": \"{}\", \"id\": \"{}\", \"updates\": {}, \
             \"state_changes\": {}, \"final_full_bytes\": {}, \"persisted_bytes\": {}, \
             \"full_policy_bytes\": {}, \"persistence_ratio\": {:.6}, \"points\": {}}}{}\n",
            r.algorithm,
            r.id,
            r.updates,
            r.state_changes,
            r.final_full_bytes,
            r.persisted_bytes,
            r.full_policy_bytes,
            r.persistence_ratio(),
            curve_points_json(&r.points),
            if i + 1 < curves.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Structural check of the emitted JSON (mirrors the throughput schema check: a
/// malformed record fails CI instead of silently rotting).
pub fn schema_check(json: &str) -> Result<(), String> {
    for key in [
        "\"experiment\": \"engine\"",
        "\"scale\":",
        "\"shards\":",
        "\"rows\":",
        "\"mode\":",
        "\"restore_ok\": true",
        "\"checkpoint_bytes\":",
        "\"delta_bytes\":",
        "\"max_query_diff\":",
        "\"curves\":",
        "\"persisted_bytes\":",
        "\"full_policy_bytes\":",
        "\"persistence_ratio\":",
    ] {
        if !json.contains(key) {
            return Err(format!("BENCH_engine.json is missing {key}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_matrix_covers_every_engine_spec_and_scenario_and_holds_the_laws() {
        let (table, rows) = run(Scale::Quick);
        assert_eq!(
            rows.len(),
            engine_specs().len() * scenarios(Scale::Quick).len()
        );
        assert_eq!(table.len(), rows.len());
        equivalence_check(&rows).expect("engine laws must hold");
        let mut saw_delta = false;
        let mut saw_compacting = false;
        let mut saw_full = false;
        for r in &rows {
            assert!(
                r.checkpoints >= 1,
                "{}: no checkpoint exercised",
                r.algorithm
            );
            assert!(r.checkpoint_bytes > 0);
            assert_eq!(r.curve.len(), r.checkpoints);
            assert_eq!(r.updates, scenarios(Scale::Quick)[0].total_updates());
            if r.merge == Merge::Exact {
                assert_eq!(r.max_query_diff, 0.0, "{}", r.algorithm);
            }
            match r.mode {
                CheckpointMode::Full => {
                    saw_full = true;
                    assert_eq!(r.delta_bytes, r.checkpoint_bytes, "{}", r.algorithm);
                }
                CheckpointMode::Delta { compact_every } => {
                    saw_delta = true;
                    saw_compacting |= compact_every > 0;
                    // The chain base is a full checkpoint; later points are deltas.
                    assert_eq!(r.curve[0].persisted_bytes, r.curve[0].full_bytes);
                }
            }
        }
        assert!(
            saw_delta && saw_compacting && saw_full,
            "the matrix must exercise delta, compacting-delta, and full modes"
        );
        let curves = delta_curves(Scale::Quick);
        let json = to_json(Scale::Quick, &rows, &curves);
        schema_check(&json).expect("schema");
    }

    #[test]
    fn delta_curves_cover_the_registry_and_show_sublinear_persistence() {
        let curves = delta_curves(Scale::Quick);
        assert_eq!(curves.len(), registry().len());
        curves_check(&curves).expect("persistence-bill laws must hold");
        assert_eq!(curves_table(&curves).len(), curves.len());
        for r in &curves {
            assert!(r.final_full_bytes > 0, "{}", r.id);
            assert_eq!(r.points[0].persisted_bytes, r.points[0].full_bytes);
            assert!(
                r.points.iter().map(|p| p.ingested).is_sorted(),
                "{}: curve positions must ascend",
                r.id
            );
        }
    }

    #[test]
    fn equivalence_check_flags_violations() {
        let row = |restore_ok, diff, merge, checkpoints| Row {
            algorithm: "X".into(),
            id: "x",
            scenario: "s".into(),
            mode: CheckpointMode::Full,
            updates: 1,
            state_changes: 1,
            checkpoints,
            checkpoint_bytes: 1,
            delta_bytes: 1,
            curve: vec![
                CurvePoint {
                    ingested: 1,
                    full_bytes: 1,
                    persisted_bytes: 1
                };
                checkpoints
            ],
            restore_ok,
            max_query_diff: diff,
            merge,
        };
        assert!(equivalence_check(&[row(true, 0.0, Merge::Exact, 1)]).is_ok());
        assert!(equivalence_check(&[row(false, 0.0, Merge::Exact, 1)]).is_err());
        assert!(equivalence_check(&[row(true, 0.5, Merge::Exact, 1)]).is_err());
        assert!(equivalence_check(&[row(true, 0.5, Merge::Bounded, 1)]).is_ok());
        assert!(equivalence_check(&[row(true, 0.0, Merge::Exact, 0)]).is_err());
        // An oversized "delta" (persisted far beyond full + overhead) is flagged.
        let mut oversized = row(true, 0.0, Merge::Exact, 1);
        oversized.curve[0].persisted_bytes = 10_000;
        assert!(equivalence_check(&[oversized]).is_err());
    }

    #[test]
    fn curves_check_flags_linear_persistence() {
        let curve = |id, ratio: f64| {
            let full = 1_000usize;
            CurveRow {
                id,
                algorithm: id.to_string(),
                updates: 100,
                state_changes: 10,
                final_full_bytes: full,
                persisted_bytes: (ratio * (CURVE_CHECKPOINTS * full) as f64) as usize,
                full_policy_bytes: CURVE_CHECKPOINTS * full,
                points: vec![
                    CurvePoint {
                        ingested: 1,
                        full_bytes: full,
                        persisted_bytes: full
                    };
                    CURVE_CHECKPOINTS
                ],
            }
        };
        // A sublinear few-state row beating a linear baseline passes.
        assert!(curves_check(&[curve("sample_and_hold", 0.2), curve("count_min", 0.9)]).is_ok());
        // Few-state persisting like a baseline fails both guards.
        assert!(curves_check(&[curve("sample_and_hold", 0.9), curve("count_min", 0.9)]).is_err());
        // Sublinear but not clearly ahead of the baseline fails the 2× margin.
        assert!(curves_check(&[curve("sample_and_hold", 0.45), curve("count_min", 0.6)]).is_err());
    }

    #[test]
    fn schema_check_rejects_incomplete_json() {
        assert!(schema_check("{}").is_err());
    }
}
