//! Experiment F12 — the sharded, checkpointable engine under config-driven
//! scenarios.
//!
//! For every engine-capable registry entry and every scenario in the matrix, two
//! engines ingest the same synthesized stream: a 4-shard engine and a single-shard
//! reference.  At the scenario's checkpoint cadence the sharded engine is
//! checkpointed and a **fresh** engine (simulated crash: new process, constructor
//! state only) is restored from the bytes and takes over the ingest — so every run
//! exercises the snapshot law mid-stream, not just at the end.  At the end the
//! merged shard union is compared against the single-shard reference through the
//! typed [`Query`] API: exact-merge summaries must agree bit-for-bit, bounded-merge
//! summaries within their additive bound.
//!
//! The scenario matrix is a list of [`Scenario`] *config literals* (steady Zipf,
//! drifting hot set, flash-crowd bursts, fully sorted, uniform) — adding a workload
//! is editing that list, not writing a binary.

use fsc_engine::{EngineConfig, Routing, Scenario, Segment, Workload};
use fsc_state::{Answer, Query};

use crate::registry::{engine_specs, AlgorithmSpec, MakeCtx, Merge};
use crate::table::{f, Table};
use crate::Scale;

/// Number of shards the sharded engine runs.
pub const SHARDS: usize = 4;

/// One measured (algorithm, scenario) cell.
#[derive(Debug, Clone)]
pub struct Row {
    /// Summary name (shard 0's `StreamAlgorithm::name`).
    pub algorithm: String,
    /// Registry id of the summary.
    pub id: &'static str,
    /// Scenario name.
    pub scenario: String,
    /// Updates ingested.
    pub updates: usize,
    /// Combined state changes across shards.
    pub state_changes: u64,
    /// Checkpoints taken (and failover-restored) during the run.
    pub checkpoints: usize,
    /// Size of the last engine checkpoint, in bytes.
    pub checkpoint_bytes: usize,
    /// Whether every mid-stream failover restore reproduced the pre-crash reports.
    pub restore_ok: bool,
    /// Largest |sharded − single| difference over the probe queries.
    pub max_query_diff: f64,
    /// Merge semantics of the summary (exact unions must have zero diff).
    pub merge: Merge,
}

/// The scenario matrix: one engine workload per traffic shape the streamgen layer
/// can synthesize.  Each entry is a plain config literal.
pub fn scenarios(scale: Scale) -> Vec<Scenario> {
    let n = scale.pick(1 << 10, 1 << 14);
    let m = scale.pick(6_000, 120_000);
    let cadence = Some(m / 3);
    let batch = 1_024;
    let seg = |workload, updates| Segment { workload, updates };
    vec![
        Scenario {
            name: "steady-zipf".into(),
            universe: n,
            seed: 41,
            segments: vec![seg(Workload::Zipf { theta: 1.1 }, m)],
            checkpoint_every: cadence,
            batch,
        },
        Scenario {
            name: "drifting-hot-set".into(),
            universe: n,
            seed: 42,
            segments: vec![
                seg(
                    Workload::Drift {
                        theta: 1.2,
                        step: (n / 3) as u64,
                    },
                    m / 3,
                ),
                seg(
                    Workload::Drift {
                        theta: 1.2,
                        step: (n / 3) as u64,
                    },
                    m / 3,
                ),
                seg(
                    Workload::Drift {
                        theta: 1.2,
                        step: (n / 3) as u64,
                    },
                    m - 2 * (m / 3),
                ),
            ],
            checkpoint_every: cadence,
            batch,
        },
        Scenario {
            name: "flash-crowd-bursts".into(),
            universe: n,
            seed: 43,
            segments: vec![
                seg(Workload::Zipf { theta: 1.0 }, m / 2),
                seg(
                    Workload::Bursty {
                        theta: 1.3,
                        burst: 32,
                    },
                    m - m / 2,
                ),
            ],
            checkpoint_every: cadence,
            batch,
        },
        Scenario {
            name: "sorted-adversarial".into(),
            universe: n,
            seed: 44,
            segments: vec![seg(Workload::Sorted { theta: 1.0 }, m)],
            checkpoint_every: cadence,
            batch,
        },
        Scenario {
            name: "uniform".into(),
            universe: n,
            seed: 45,
            segments: vec![seg(Workload::Uniform, m)],
            checkpoint_every: cadence,
            batch,
        },
    ]
}

/// Probe queries compared between the sharded union and the single-shard
/// reference: point estimates over the densest items plus the moment estimate.
fn probes(universe: usize) -> Vec<Query> {
    let mut out: Vec<Query> = (0..64.min(universe as u64)).map(Query::Point).collect();
    out.push(Query::Moment);
    out.push(Query::Entropy);
    out
}

fn answer_diff(a: &Answer, b: &Answer) -> Option<f64> {
    match (a, b) {
        (Answer::Unsupported, Answer::Unsupported) => None,
        (Answer::Scalar(x), Answer::Scalar(y)) => Some((x - y).abs()),
        _ => Some(f64::INFINITY),
    }
}

/// Runs one (spec, scenario) cell.
fn run_cell(spec: &AlgorithmSpec, scenario: &Scenario) -> Row {
    let factory = spec.engine.expect("engine-capable spec");
    let ctx = MakeCtx::new(scenario.universe, scenario.total_updates());
    let config = EngineConfig {
        shards: SHARDS,
        routing: Routing::RoundRobin,
        ..EngineConfig::default()
    };
    let mut engine = factory(&ctx, config);
    let mut single = factory(
        &ctx,
        EngineConfig {
            shards: 1,
            ..config
        },
    );

    let stream = scenario.stream();
    let mut checkpoints = 0usize;
    let mut checkpoint_bytes = 0usize;
    let mut restore_ok = true;
    let mut since_checkpoint = 0usize;
    for batch in stream.chunks(scenario.batch.max(1)) {
        engine.ingest(batch);
        single.ingest(batch);
        since_checkpoint += batch.len();
        if let Some(cadence) = scenario.checkpoint_every {
            if since_checkpoint >= cadence {
                since_checkpoint = 0;
                // Checkpoint, simulate a crash, and fail over onto a fresh engine.
                let bytes = engine.checkpoint();
                checkpoint_bytes = bytes.len();
                checkpoints += 1;
                let before = engine.report();
                let mut fresh = factory(&ctx, config);
                restore_ok &= fresh.restore_from(&bytes).is_ok();
                restore_ok &= fresh.report() == before;
                restore_ok &= fresh.checkpoint() == bytes;
                engine = fresh;
            }
        }
    }

    let probes = probes(scenario.universe);
    // One merged view per engine for the whole probe set (query_many), not one
    // restore-and-merge pass per probe.
    let sharded_answers = engine.query_many(&probes).expect("merged view");
    let reference_answers = single.query_many(&probes).expect("merged view");
    let mut max_query_diff = 0.0f64;
    for (sharded, reference) in sharded_answers.iter().zip(&reference_answers) {
        if let Some(diff) = answer_diff(sharded, reference) {
            max_query_diff = max_query_diff.max(diff);
        }
    }

    Row {
        algorithm: engine.algorithm(),
        id: spec.id,
        scenario: scenario.name.clone(),
        updates: stream.len(),
        state_changes: engine.report().state_changes,
        checkpoints,
        checkpoint_bytes,
        restore_ok,
        max_query_diff,
        merge: spec.merge,
    }
}

/// Runs the full (engine-capable algorithms × scenarios) matrix.
pub fn run(scale: Scale) -> (Table, Vec<Row>) {
    let scenario_list = scenarios(scale);
    let mut rows = Vec::new();
    for spec in engine_specs() {
        for scenario in &scenario_list {
            rows.push(run_cell(&spec, scenario));
        }
    }

    let mut table = Table::new(
        &format!(
            "F12 — sharded engine ({SHARDS} shards) vs single shard across scenarios, \
             with mid-stream checkpoint/failover"
        ),
        &[
            "algorithm",
            "scenario",
            "updates",
            "state changes",
            "checkpoints",
            "ckpt bytes",
            "restore ok",
            "max |Δquery|",
        ],
    );
    for r in &rows {
        table.row(vec![
            r.algorithm.clone(),
            r.scenario.clone(),
            r.updates.to_string(),
            r.state_changes.to_string(),
            r.checkpoints.to_string(),
            r.checkpoint_bytes.to_string(),
            r.restore_ok.to_string(),
            f(r.max_query_diff),
        ]);
    }
    (table, rows)
}

/// Fails if any cell violated the engine's two laws: every mid-stream failover must
/// reproduce the pre-crash engine, and exact-merge unions must answer identically
/// to the single-shard reference.  `fig_engine` (and CI through it) runs this after
/// every sweep.
pub fn equivalence_check(rows: &[Row]) -> Result<(), String> {
    for r in rows {
        if !r.restore_ok {
            return Err(format!(
                "{} on {}: checkpoint/failover did not reproduce the engine",
                r.algorithm, r.scenario
            ));
        }
        if r.merge == Merge::Exact && r.max_query_diff != 0.0 {
            return Err(format!(
                "{} on {}: exact-merge union diverged from the single shard by {}",
                r.algorithm, r.scenario, r.max_query_diff
            ));
        }
        if r.checkpoints == 0 {
            return Err(format!(
                "{} on {}: scenario took no checkpoints — the failover path went untested",
                r.algorithm, r.scenario
            ));
        }
    }
    Ok(())
}

/// Renders the rows as the `BENCH_engine.json` record (hand-rolled, like the
/// throughput record: the workspace is offline and carries no serde).
pub fn to_json(scale: Scale, rows: &[Row]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"engine\",\n");
    out.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        scale.pick("Quick", "Full")
    ));
    out.push_str(&format!("  \"shards\": {SHARDS},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"algorithm\": \"{}\", \"id\": \"{}\", \"scenario\": \"{}\", \
             \"updates\": {}, \"state_changes\": {}, \"checkpoints\": {}, \
             \"checkpoint_bytes\": {}, \"restore_ok\": {}, \"max_query_diff\": {:.6}, \
             \"merge\": \"{:?}\"}}{}\n",
            r.algorithm,
            r.id,
            r.scenario,
            r.updates,
            r.state_changes,
            r.checkpoints,
            r.checkpoint_bytes,
            r.restore_ok,
            r.max_query_diff,
            r.merge,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Structural check of the emitted JSON (mirrors the throughput schema check: a
/// malformed record fails CI instead of silently rotting).
pub fn schema_check(json: &str) -> Result<(), String> {
    for key in [
        "\"experiment\": \"engine\"",
        "\"scale\":",
        "\"shards\":",
        "\"rows\":",
        "\"restore_ok\": true",
        "\"checkpoint_bytes\":",
        "\"max_query_diff\":",
    ] {
        if !json.contains(key) {
            return Err(format!("BENCH_engine.json is missing {key}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_matrix_covers_every_engine_spec_and_scenario_and_holds_the_laws() {
        let (table, rows) = run(Scale::Quick);
        assert_eq!(
            rows.len(),
            engine_specs().len() * scenarios(Scale::Quick).len()
        );
        assert_eq!(table.len(), rows.len());
        equivalence_check(&rows).expect("engine laws must hold");
        for r in &rows {
            assert!(
                r.checkpoints >= 1,
                "{}: no checkpoint exercised",
                r.algorithm
            );
            assert!(r.checkpoint_bytes > 0);
            assert_eq!(r.updates, scenarios(Scale::Quick)[0].total_updates());
            if r.merge == Merge::Exact {
                assert_eq!(r.max_query_diff, 0.0, "{}", r.algorithm);
            }
        }
        let json = to_json(Scale::Quick, &rows);
        schema_check(&json).expect("schema");
    }

    #[test]
    fn equivalence_check_flags_violations() {
        let row = |restore_ok, diff, merge, checkpoints| Row {
            algorithm: "X".into(),
            id: "x",
            scenario: "s".into(),
            updates: 1,
            state_changes: 1,
            checkpoints,
            checkpoint_bytes: 1,
            restore_ok,
            max_query_diff: diff,
            merge,
        };
        assert!(equivalence_check(&[row(true, 0.0, Merge::Exact, 1)]).is_ok());
        assert!(equivalence_check(&[row(false, 0.0, Merge::Exact, 1)]).is_err());
        assert!(equivalence_check(&[row(true, 0.5, Merge::Exact, 1)]).is_err());
        assert!(equivalence_check(&[row(true, 0.5, Merge::Bounded, 1)]).is_ok());
        assert!(equivalence_check(&[row(true, 0.0, Merge::Exact, 0)]).is_err());
    }

    #[test]
    fn schema_check_rejects_incomplete_json() {
        assert!(schema_check("{}").is_err());
    }
}
