//! Experiment F10 — `F_p` estimation for `p < 1` (Theorem 3.2): accuracy and word
//! writes of the p-stable sketch with geometric accumulators, against the write count
//! an exact-accumulator sketch of the same dimensions would incur.

use fsc::FpSmallEstimator;
use fsc_state::{MomentEstimator, StreamAlgorithm};
use fsc_streamgen::zipf::zipf_stream;
use fsc_streamgen::FrequencyVector;

use crate::table::{f, Table};
use crate::Scale;

/// One `p < 1` measurement.
#[derive(Debug, Clone)]
pub struct Row {
    /// Moment order `p`.
    pub p: f64,
    /// Relative error of the estimate.
    pub rel_error: f64,
    /// Measured word writes of the approximate sketch.
    pub word_writes: u64,
    /// Word writes an exact sketch of the same dimensions would perform (`rows · m`).
    pub exact_sketch_writes: u64,
}

/// Runs the `p < 1` sweep serially.
pub fn run(scale: Scale) -> (Table, Vec<Row>) {
    run_with_threads(scale, 1)
}

/// Runs the `p < 1` sweep with up to `threads` worker threads (rows are deterministic
/// per cell, so output is identical at every thread count).
pub fn run_with_threads(scale: Scale, threads: usize) -> (Table, Vec<Row>) {
    let n = scale.pick(1 << 10, 1 << 12);
    let m = 8 * n;
    let stream = zipf_stream(n, m, 1.0, 777);
    let truth = FrequencyVector::from_stream(&stream);
    let ps = [0.25, 0.5, 0.75];
    let eps = 0.3;

    // Each p-cell is an independent deterministic computation, so the sweep spreads
    // over its own worker threads when asked (these are in addition to any workers the
    // caller holds — `run_all` accepts the modest oversubscription).
    let rows = crate::sharded::parallel_map(
        ps.iter().copied().enumerate().collect(),
        threads,
        |_, (idx, p)| {
            let exact = truth.fp(p);
            let mut est = FpSmallEstimator::new(p, eps, 10 + idx as u64);
            est.process_stream(&stream);
            let rel_error = (est.estimate_moment() - exact).abs() / exact;
            let report = est.report();
            let exact_sketch_writes = (est.rows() * m) as u64;
            Row {
                p,
                rel_error,
                word_writes: report.word_writes,
                exact_sketch_writes,
            }
        },
    );

    let mut table = Table::new(
        &format!("F10 — F_p estimation for p < 1 (n = {n}, m = {m}, eps = {eps})"),
        &[
            "p",
            "rel. error",
            "word writes (ours)",
            "word writes (exact sketch)",
            "reduction",
        ],
    );
    for r in &rows {
        table.row(vec![
            f(r.p),
            f(r.rel_error),
            r.word_writes.to_string(),
            r.exact_sketch_writes.to_string(),
            f(r.exact_sketch_writes as f64 / r.word_writes.max(1) as f64),
        ]);
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_are_accurate_with_far_fewer_writes() {
        let (_, rows) = run(Scale::Quick);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(row.rel_error < 0.45, "p={} error {}", row.p, row.rel_error);
            assert!(
                row.word_writes * 5 < row.exact_sketch_writes,
                "p={}: writes {} vs exact sketch {}",
                row.p,
                row.word_writes,
                row.exact_sketch_writes
            );
        }
    }
}
