//! Experiment F8 — entropy estimation (Theorem 3.8): additive error and state changes
//! across a sweep of stream skews, from near-uniform (maximum entropy) to highly
//! concentrated (low entropy).

use fsc::EntropyFewState;
use fsc_state::{EntropyEstimator, StreamAlgorithm};
use fsc_streamgen::zipf::zipf_stream;
use fsc_streamgen::FrequencyVector;

use crate::table::{f, Table};
use crate::Scale;

/// One skew point of the entropy sweep.
#[derive(Debug, Clone)]
pub struct Row {
    /// Zipf exponent of the workload.
    pub zipf_s: f64,
    /// Exact entropy in bits.
    pub exact_bits: f64,
    /// Estimated entropy in bits.
    pub estimated_bits: f64,
    /// Additive error in bits.
    pub additive_error: f64,
    /// Measured state changes.
    pub state_changes: u64,
    /// √n for reference (Theorem 3.8's state-change scale).
    pub sqrt_n: f64,
}

/// Runs the entropy sweep.
pub fn run(scale: Scale) -> (Table, Vec<Row>) {
    let n = scale.pick(1 << 12, 1 << 14);
    let m = 8 * n;
    let skews = [0.0, 0.5, 1.0, 1.3, 1.8];
    let mut rows = Vec::new();
    let mut table = Table::new(
        &format!("F8 — entropy estimation across skews (n = {n}, m = {m})"),
        &[
            "zipf s",
            "exact H (bits)",
            "estimate (bits)",
            "additive error",
            "state changes",
            "sqrt(n)",
        ],
    );

    for (idx, &s) in skews.iter().enumerate() {
        let stream = zipf_stream(n, m, s, 300 + idx as u64);
        let exact_bits = FrequencyVector::from_stream(&stream).entropy_bits();
        let mut est = EntropyFewState::new(0.2, n, m, 40 + idx as u64);
        est.process_stream(&stream);
        let estimated_bits = est.estimate_entropy();
        let row = Row {
            zipf_s: s,
            exact_bits,
            estimated_bits,
            additive_error: (estimated_bits - exact_bits).abs(),
            state_changes: est.report().state_changes,
            sqrt_n: (n as f64).sqrt(),
        };
        table.row(vec![
            f(s),
            f(row.exact_bits),
            f(row.estimated_bits),
            f(row.additive_error),
            row.state_changes.to_string(),
            f(row.sqrt_n),
        ]);
        rows.push(row);
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_ordering_and_accuracy_hold_across_skews() {
        let (_, rows) = run(Scale::Quick);
        assert_eq!(rows.len(), 5);
        // Skewer streams have lower exact entropy, and the estimates must follow the
        // same downward trend.
        assert!(rows[0].exact_bits > rows[4].exact_bits + 2.0);
        assert!(rows[0].estimated_bits > rows[4].estimated_bits);
        // Near-uniform streams (the well-conditioned regime) must be reasonably
        // accurate; moderately skewed streams are dominated by mid-frequency items and
        // carry a larger error (see the discussion in EXPERIMENTS.md).
        assert!(
            rows[0].additive_error < 1.0,
            "error {}",
            rows[0].additive_error
        );
        assert!(
            rows[1].additive_error < 2.5,
            "error {}",
            rows[1].additive_error
        );
    }
}
