//! One module per table/figure of the paper (DESIGN.md Section 5).

pub mod accuracy;
pub mod counterexample;
pub mod engine;
pub mod entropy;
pub mod heavy_hitters;
pub mod lower_bound;
pub mod morris;
pub mod nvm;
pub mod p_small;
pub mod recovery;
pub mod scaling;
pub mod serve;
pub mod serve_net;
pub mod sharding;
pub mod table1;
pub mod throughput;
