//! Experiment T2 — sustained single-thread update throughput (items/sec).
//!
//! The paper's thesis is that state changes — not instructions — are the scarce
//! resource, which only holds water if the measurement substrate itself costs almost
//! nothing.  This experiment times every algorithm in the repository on three
//! workloads (Zipf, uniform, and a synthetic netflow trace) and reports items/sec,
//! along two *modes*:
//!
//! * **batch** — `process_stream`, i.e. the specialized `process_batch` kernels
//!   (the production fast path);
//! * **item** — a per-item `update` loop (the reference path the kernels must be
//!   observably identical to).
//!
//! Because kernels and per-item paths are required to produce identical state-change
//! counts, [`divergence_check`] fails the run (and CI) if any `(algorithm, stream)`
//! cell disagrees between modes — a kernel that silently diverges cannot land.
//!
//! The machine-readable record `BENCH_throughput.json` additionally carries a
//! `trajectory` array: one dated entry per recording — including the detected host
//! core count and the batch-kernel lane width — appended (never overwritten) by
//! `fig_throughput`, so the perf history across PRs stays machine-readable.
//! [`assert_append_only`] enforces the never-overwritten part, and
//! [`last_trajectory_countmin`] exposes the latest recorded headline as the
//! reference for the CI throughput-regression gate.
//!
//! Timing methodology: per (algorithm, stream, mode) cell the stream is processed
//! once as a warm-up and then `samples` more times on freshly constructed instances;
//! the **best** wall-clock time is reported (minimum is the standard estimator for a
//! deterministic workload on a noisy machine — all other samples are strictly
//! noise-inflated).  Construction is outside the timed region.

use std::time::Instant;

use fsc_state::TrackerKind;
use fsc_streamgen::netflow::{flow_trace, FlowTraceSpec};
use fsc_streamgen::uniform::uniform_stream;
use fsc_streamgen::zipf::zipf_stream;

use crate::registry::{spec, MakeCtx};
use crate::table::{f, Table};
use crate::Scale;

/// Which update path(s) a throughput run measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// `process_stream` → the specialized batch kernels.
    Batch,
    /// A per-item `update` loop (the reference path).
    Item,
    /// Both, enabling the kernel-divergence check.
    #[default]
    Both,
}

impl Mode {
    /// Parses a `--mode` flag value.
    pub fn parse(s: &str) -> Option<Mode> {
        match s {
            "batch" => Some(Mode::Batch),
            "item" => Some(Mode::Item),
            "both" => Some(Mode::Both),
            _ => None,
        }
    }

    fn includes(self, mode: &str) -> bool {
        matches!(
            (self, mode),
            (Mode::Both, _) | (Mode::Batch, "batch") | (Mode::Item, "item")
        )
    }
}

/// One measured (algorithm, stream, mode) cell.
#[derive(Debug, Clone)]
pub struct Row {
    /// Algorithm name (as reported by [`fsc_state::StreamAlgorithm::name`]).
    pub algorithm: String,
    /// Tracker backend the instance ran with (`"full"` or `"lean"`).
    pub tracker: &'static str,
    /// Stream label.
    pub stream: String,
    /// Update path: `"batch"` (`process_stream`) or `"item"` (per-item `update`).
    pub mode: &'static str,
    /// Number of stream updates processed per run.
    pub items: usize,
    /// Best wall-clock seconds over the timed samples.
    pub best_elapsed_s: f64,
    /// `items / best_elapsed_s`.
    pub items_per_sec: f64,
    /// State changes recorded by the run (identical across samples — determinism —
    /// and, by the batch laws, identical across modes).
    pub state_changes: u64,
}

/// The full measurement set plus the metadata needed to reproduce it.
#[derive(Debug, Clone)]
pub struct Report {
    /// `"Quick"` or `"Full"`.
    pub scale: &'static str,
    /// Timed samples per cell (after one warm-up).
    pub samples: usize,
    /// Logical cores detected on the measuring host
    /// ([`fsc_engine::detected_cores`]) — recorded so a reader can tell a 1-CPU
    /// container's numbers from a workstation's.
    pub host_cores: usize,
    /// Batch-kernel lane width the lane-packed sketches ran with (the default
    /// width when no `--lanes` override was given).
    pub lane_width: usize,
    /// `(label, universe, length)` per stream.
    pub streams: Vec<(String, usize, usize)>,
    /// All measured cells.
    pub rows: Vec<Row>,
}

impl Report {
    /// The headline cell: CountMin on the Zipf stream under the exact-accounting
    /// (full) tracker, batch mode — the row the PR-over-PR perf trajectory is
    /// anchored to.
    pub fn headline(&self) -> Option<&Row> {
        self.cell("CountMin", "full", "zipf", "batch")
    }

    /// Looks up the batch/full cell for a `(algorithm prefix, stream prefix)` pair.
    pub fn cell(&self, algorithm: &str, tracker: &str, stream: &str, mode: &str) -> Option<&Row> {
        self.rows.iter().find(|r| {
            r.algorithm.starts_with(algorithm)
                && r.tracker == tracker
                && r.stream.starts_with(stream)
                && r.mode == mode
        })
    }

    /// Renders the report as pretty-printed JSON (hand-rolled: the workspace is
    /// offline and carries no serde).  `baseline_countmin` is the pre-PR headline
    /// items/sec measured by this same harness, used to record the speedup;
    /// `trajectory` is the full (carried-forward plus appended) history array,
    /// rendered verbatim as its entries' JSON objects.
    pub fn to_json(&self, baseline_countmin: Option<f64>, trajectory: &[String]) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"experiment\": \"throughput\",\n");
        out.push_str(&format!("  \"scale\": \"{}\",\n", self.scale));
        out.push_str(&format!("  \"samples\": {},\n", self.samples));
        out.push_str(&format!("  \"host_cores\": {},\n", self.host_cores));
        out.push_str(&format!("  \"lane_width\": {},\n", self.lane_width));
        out.push_str("  \"unit\": \"items_per_sec\",\n");
        out.push_str("  \"streams\": [\n");
        for (i, (label, n, m)) in self.streams.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{label}\", \"universe\": {n}, \"length\": {m}}}{}\n",
                if i + 1 < self.streams.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"algorithm\": \"{}\", \"tracker\": \"{}\", \"stream\": \"{}\", \
                 \"mode\": \"{}\", \"items\": {}, \"best_elapsed_s\": {:.6}, \
                 \"items_per_sec\": {:.0}, \"state_changes\": {}}}{}\n",
                r.algorithm,
                r.tracker,
                r.stream,
                r.mode,
                r.items,
                r.best_elapsed_s,
                r.items_per_sec,
                r.state_changes,
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"trajectory\": [\n");
        for (i, entry) in trajectory.iter().enumerate() {
            out.push_str(&format!(
                "    {}{}\n",
                entry.trim(),
                if i + 1 < trajectory.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]");
        if let Some(head) = self.headline() {
            out.push_str(",\n  \"headline\": {\n");
            out.push_str(&format!(
                "    \"algorithm\": \"{}\", \"stream\": \"{}\", \"mode\": \"{}\",\n",
                head.algorithm, head.stream, head.mode
            ));
            out.push_str(&format!("    \"items_per_sec\": {:.0}", head.items_per_sec));
            if let Some(base) = baseline_countmin {
                out.push_str(&format!(",\n    \"pre_pr_items_per_sec\": {base:.0}"));
                if base > 0.0 {
                    out.push_str(&format!(
                        ",\n    \"speedup_vs_pre_pr\": {:.2}",
                        head.items_per_sec / base
                    ));
                }
            }
            out.push_str("\n  }");
        }
        out.push_str("\n}\n");
        out
    }

    /// Renders this run's dated trajectory entry: the key full-tracker Zipf cells in
    /// batch mode (items/sec), labelled so readers can attribute the recording.
    ///
    /// The caller-supplied label and date are sanitized for the hand-rolled JSON
    /// writer and the bracket-scanning [`trajectory_inner`] parser: quotes,
    /// backslashes, square brackets, and control characters become `_`, so a label
    /// like `PR 5 "batch" [wip]` cannot corrupt the committed record.
    pub fn trajectory_entry(&self, date: &str, label: &str) -> String {
        let sanitize = |text: &str| -> String {
            text.chars()
                .map(|c| match c {
                    '"' | '\\' | '[' | ']' => '_',
                    c if c.is_control() => '_',
                    c => c,
                })
                .collect()
        };
        let (date, label) = (sanitize(date), sanitize(label));
        let cell = |alg: &str| {
            self.cell(alg, "full", "zipf", "batch")
                .map(|r| format!("{:.0}", r.items_per_sec))
                .unwrap_or_else(|| "null".to_string())
        };
        format!(
            "{{\"date\": \"{date}\", \"label\": \"{label}\", \"scale\": \"{}\", \
             \"cores\": {}, \"lane_width\": {}, \
             \"stream\": \"zipf-1.1\", \"mode\": \"batch\", \
             \"countmin\": {}, \"ams\": {}, \"few_state_heavy_hitters\": {}, \
             \"fp_estimator\": {}, \"sample_and_hold\": {}}}",
            self.scale,
            self.host_cores,
            self.lane_width,
            cell("CountMin"),
            cell("AMS"),
            cell("FewStateHeavyHitters"),
            cell("FpEstimator"),
            cell("SampleAndHold(")
        )
    }
}

/// Fails if any `(algorithm, tracker, stream)` cell measured in both modes recorded
/// different state-change counts — the observable a silently divergent batch kernel
/// cannot fake.
pub fn divergence_check(report: &Report) -> Result<(), String> {
    for r in &report.rows {
        if r.mode != "batch" {
            continue;
        }
        if let Some(item_row) = report.rows.iter().find(|x| {
            x.mode == "item"
                && x.algorithm == r.algorithm
                && x.tracker == r.tracker
                && x.stream == r.stream
        }) {
            if item_row.state_changes != r.state_changes {
                return Err(format!(
                    "kernel divergence: {} [{}] on {}: batch recorded {} state changes, \
                     per-item recorded {}",
                    r.algorithm, r.tracker, r.stream, r.state_changes, item_row.state_changes
                ));
            }
        }
    }
    Ok(())
}

/// Structural check of the emitted JSON against the mode that produced it: all
/// required keys present, rows for each measured mode, and — whenever a batch row
/// exists — the headline block (item-only runs legitimately have neither).
/// Hand-rolled writer, hand-rolled checker: a malformed record fails CI instead of
/// silently rotting the trajectory.
pub fn schema_check(json: &str, mode: Mode) -> Result<(), String> {
    let mut required = vec![
        "\"experiment\": \"throughput\"",
        "\"scale\":",
        "\"samples\":",
        "\"host_cores\":",
        "\"lane_width\":",
        "\"unit\": \"items_per_sec\"",
        "\"streams\":",
        "\"rows\":",
        "\"trajectory\":",
        "\"items_per_sec\":",
        "\"state_changes\":",
        "\"date\":",
    ];
    if mode.includes("batch") {
        required.push("\"headline\":");
        required.push("\"mode\": \"batch\"");
    }
    if mode.includes("item") {
        required.push("\"mode\": \"item\"");
    }
    for key in required {
        if !json.contains(key) {
            return Err(format!("BENCH_throughput.json is missing {key}"));
        }
    }
    Ok(())
}

/// Extracts the raw inner text of an existing record's `"trajectory": [...]` array
/// (verbatim entry objects, one per line), so a new recording can carry history
/// forward.  Returns `None` when the file predates the trajectory format.
pub fn trajectory_inner(old_json: &str) -> Option<Vec<String>> {
    let start = old_json.find("\"trajectory\": [")?;
    let open = old_json[start..].find('[')? + start;
    let mut depth = 0usize;
    let mut end = None;
    for (i, c) in old_json[open..].char_indices() {
        match c {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    end = Some(open + i);
                    break;
                }
            }
            _ => {}
        }
    }
    let inner = &old_json[open + 1..end?];
    Some(
        inner
            .lines()
            .map(|l| l.trim().trim_end_matches(',').to_string())
            .filter(|l| !l.is_empty())
            .collect(),
    )
}

/// Fails unless the previously recorded trajectory entries are a verbatim,
/// in-order prefix of the new entry list — i.e. a recording may only *append*
/// history, never rewrite or drop it.  `fig_throughput` runs this before
/// overwriting `BENCH_throughput.json`, so a bug (or a tempting hand edit) in the
/// carry-forward path cannot silently erase the PR-over-PR perf record.
pub fn assert_append_only(old_entries: &[String], new_entries: &[String]) -> Result<(), String> {
    if new_entries.len() < old_entries.len() {
        return Err(format!(
            "trajectory shrank from {} to {} entries; recordings must append, never drop",
            old_entries.len(),
            new_entries.len()
        ));
    }
    for (i, (old, new)) in old_entries.iter().zip(new_entries).enumerate() {
        if old != new {
            return Err(format!(
                "trajectory entry {i} was rewritten:\n  recorded: {old}\n  new:      {new}\n\
                 recordings must carry prior entries forward verbatim"
            ));
        }
    }
    Ok(())
}

/// The `countmin` items/sec of the *last* trajectory entry in an existing record —
/// the reference the CI throughput-regression gate compares a fresh measurement
/// against.  `None` when the record predates the trajectory format or the last
/// entry carries no CountMin cell.
pub fn last_trajectory_countmin(old_json: &str) -> Option<f64> {
    let entries = trajectory_inner(old_json)?;
    let last = entries.last()?;
    let idx = last.find("\"countmin\": ")?;
    let rest = &last[idx + "\"countmin\": ".len()..];
    let num: String = rest
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    num.parse().ok()
}

/// Extracts `items_per_sec` of a `(algorithm prefix, tracker, stream prefix)` row
/// from an existing record (rows without a `"mode"` field — the pre-batch-kernel
/// format — are treated as batch rows, which is what `process_stream` measured).
pub fn extract_cell(old_json: &str, algorithm: &str, tracker: &str, stream: &str) -> Option<f64> {
    for line in old_json.lines() {
        if line.contains(&format!("\"algorithm\": \"{algorithm}"))
            && line.contains(&format!("\"tracker\": \"{tracker}\""))
            && line.contains(&format!("\"stream\": \"{stream}"))
            && (!line.contains("\"mode\":") || line.contains("\"mode\": \"batch\""))
        {
            let idx = line.find("\"items_per_sec\": ")?;
            let rest = &line[idx + "\"items_per_sec\": ".len()..];
            let num: String = rest
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '.')
                .collect();
            return num.parse().ok();
        }
    }
    None
}

/// The measured cases, as `(registry id, tracker backend)` pairs — the constructor
/// bodies live in [`crate::registry`] (shared with the engine experiment and every
/// fig binary), so this experiment only names *which* entries it times and under
/// which backend.  Order and parameters reproduce the recorded
/// `BENCH_throughput.json` rows exactly.
const CASES: &[(&str, TrackerKind)] = &[
    ("sample_and_hold", TrackerKind::Full),
    ("few_state_heavy_hitters", TrackerKind::Full),
    ("fp_estimator", TrackerKind::Full),
    ("sparse_recovery", TrackerKind::Full),
    ("misra_gries", TrackerKind::Full),
    ("space_saving", TrackerKind::Full),
    ("count_min", TrackerKind::Full),
    ("count_min", TrackerKind::Lean),
    ("count_sketch", TrackerKind::Full),
    ("ams", TrackerKind::Full),
    ("sample_and_hold_classic", TrackerKind::Full),
];

fn tracker_label(kind: TrackerKind) -> &'static str {
    match kind {
        TrackerKind::Full | TrackerKind::FullAddressTracked => "full",
        TrackerKind::Lean => "lean",
    }
}

/// Runs the throughput sweep over the requested mode(s) and returns the printed
/// table plus the raw report.  `lanes` overrides the batch-kernel lane width of
/// the lane-packed sketches (`None` keeps each kernel's default); the effective
/// width and the detected host core count are recorded in the report.
pub fn run(scale: Scale, mode: Mode, lanes: Option<usize>) -> (Table, Report) {
    let n = scale.pick(1 << 12, 1 << 14);
    let m = scale.pick(1 << 14, 1 << 18);
    let samples = scale.pick(2, 3);

    let netflow = flow_trace(&FlowTraceSpec {
        elephants: scale.pick(8, 32),
        mice: (m / 4).max(64),
        seed: 9,
        ..FlowTraceSpec::default()
    });
    let streams: Vec<(String, usize, Vec<u64>)> = vec![
        ("zipf-1.1".to_string(), n, zipf_stream(n, m, 1.1, 7)),
        ("uniform".to_string(), n, uniform_stream(n, m, 8)),
        ("netflow".to_string(), netflow.flows, netflow.packets),
    ];

    let mut report = Report {
        scale: scale.pick("Quick", "Full"),
        samples,
        host_cores: fsc_engine::detected_cores(),
        lane_width: lanes.unwrap_or(fsc_counters::lanes::DEFAULT_LANE_WIDTH),
        streams: streams
            .iter()
            .map(|(label, n, s)| (label.clone(), *n, s.len()))
            .collect(),
        rows: Vec::new(),
    };

    for &(id, kind) in CASES {
        let make = spec(id)
            .unwrap_or_else(|| panic!("unknown registry id {id}"))
            .make;
        let tracker = tracker_label(kind);
        for (label, universe, stream) in &streams {
            for run_mode in ["batch", "item"] {
                if !mode.includes(run_mode) {
                    continue;
                }
                let mut best = f64::INFINITY;
                let mut state_changes = 0;
                let mut algorithm = String::new();
                // One warm-up + `samples` timed runs, each on a fresh instance.
                for sample in 0..=samples {
                    let ctx = MakeCtx::new(*universe, stream.len())
                        .with_tracker(kind)
                        .with_lanes(lanes);
                    let mut alg = make(&ctx);
                    let start = Instant::now();
                    match run_mode {
                        "item" => {
                            for &x in stream {
                                alg.update(x);
                            }
                        }
                        _ => alg.process_stream(stream),
                    }
                    let elapsed = start.elapsed().as_secs_f64();
                    if sample > 0 {
                        best = best.min(elapsed);
                    }
                    state_changes = alg.report().state_changes;
                    algorithm = alg.name().to_string();
                }
                report.rows.push(Row {
                    algorithm,
                    tracker,
                    stream: label.clone(),
                    mode: run_mode,
                    items: stream.len(),
                    best_elapsed_s: best,
                    items_per_sec: stream.len() as f64 / best,
                    state_changes,
                });
            }
        }
    }

    let mut table = Table::new(
        &format!(
            "Throughput — items/sec over {} timed samples (best), m = {m}",
            samples
        ),
        &[
            "algorithm",
            "tracker",
            "stream",
            "mode",
            "items/sec",
            "state changes",
        ],
    );
    for r in &report.rows {
        table.row(vec![
            r.algorithm.clone(),
            r.tracker.to_string(),
            r.stream.clone(),
            r.mode.to_string(),
            f(r.items_per_sec),
            r.state_changes.to_string(),
        ]);
    }
    (table, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_measures_every_cell_in_both_modes() {
        let (table, report) = run(Scale::Quick, Mode::Both, None);
        assert_eq!(report.rows.len(), 11 * 3 * 2);
        assert_eq!(report.lane_width, fsc_counters::lanes::DEFAULT_LANE_WIDTH);
        assert!(report.host_cores >= 1);
        assert_eq!(table.len(), report.rows.len());
        for row in &report.rows {
            assert!(row.items_per_sec > 0.0, "{}: no throughput", row.algorithm);
            assert!(row.items > 0);
        }
        let head = report.headline().expect("CountMin/zipf/batch headline row");
        assert_eq!(head.tracker, "full");
        assert_eq!(head.mode, "batch");
        divergence_check(&report).expect("batch kernels must not diverge");

        let entry = report.trajectory_entry("2026-01-01", "test");
        let json = report.to_json(Some(head.items_per_sec / 2.0), std::slice::from_ref(&entry));
        assert!(json.contains("\"speedup_vs_pre_pr\": 2.00"));
        assert!(json.contains("\"experiment\": \"throughput\""));
        assert!(json.contains("\"trajectory\": ["));
        schema_check(&json, Mode::Both).expect("emitted JSON must satisfy the schema");

        // The trajectory round-trips through the carry-forward extractor.
        let carried = trajectory_inner(&json).expect("trajectory array present");
        assert_eq!(carried, vec![entry]);
        // Cells extract from our own format.
        assert!(extract_cell(&json, "CountMin", "full", "zipf").is_some());
        assert_eq!(extract_cell(&json, "NoSuchAlgorithm", "full", "zipf"), None);
    }

    #[test]
    fn single_mode_runs_measure_only_that_mode() {
        let (_, report) = run(Scale::Quick, Mode::Batch, Some(1));
        assert!(report.rows.iter().all(|r| r.mode == "batch"));
        assert_eq!(report.rows.len(), 11 * 3);
        assert_eq!(report.lane_width, 1, "--lanes override is recorded");
        assert!(Mode::parse("nope").is_none());
        assert_eq!(Mode::parse("item"), Some(Mode::Item));
        assert_eq!(Mode::parse("both"), Some(Mode::Both));
    }

    #[test]
    fn item_only_records_satisfy_the_schema_without_a_headline() {
        // An item-only run has no batch rows, hence no headline block; its record is
        // nevertheless valid (regression: schema_check used to demand the headline
        // unconditionally, failing every advertised `--mode item` run).
        let (_, report) = run(Scale::Quick, Mode::Item, None);
        assert!(report.headline().is_none());
        let entry = report.trajectory_entry("2026-01-01", "item-only");
        let json = report.to_json(None, std::slice::from_ref(&entry));
        schema_check(&json, Mode::Item).expect("item-only record must be schema-valid");
        assert!(schema_check(&json, Mode::Both).is_err(), "no batch rows");
    }

    #[test]
    fn trajectory_labels_are_sanitized_for_the_handrolled_writer() {
        let report = Report {
            scale: "Quick",
            samples: 1,
            host_cores: 1,
            lane_width: 8,
            streams: vec![],
            rows: vec![],
        };
        let entry = report.trajectory_entry("2026-01-01", "PR 5 \"batch\" [wip]\\x");
        assert!(entry.contains("PR 5 _batch_ _wip__x"), "entry: {entry}");
        // The sanitized entry survives the write → carry-forward round trip even
        // though the writer and parser are hand-rolled.
        let json = report.to_json(None, std::slice::from_ref(&entry));
        assert_eq!(trajectory_inner(&json), Some(vec![entry]));
    }

    #[test]
    fn divergence_check_catches_a_mismatched_cell() {
        let mk = |mode: &'static str, sc: u64| Row {
            algorithm: "X".into(),
            tracker: "full",
            stream: "zipf".into(),
            mode,
            items: 10,
            best_elapsed_s: 1.0,
            items_per_sec: 10.0,
            state_changes: sc,
        };
        let report = Report {
            scale: "Quick",
            samples: 1,
            host_cores: 1,
            lane_width: 8,
            streams: vec![],
            rows: vec![mk("batch", 5), mk("item", 6)],
        };
        assert!(divergence_check(&report).is_err());
        let ok = Report {
            scale: "Quick",
            samples: 1,
            host_cores: 1,
            lane_width: 8,
            streams: vec![],
            rows: vec![mk("batch", 5), mk("item", 5)],
        };
        assert!(divergence_check(&ok).is_ok());
    }

    #[test]
    fn schema_check_rejects_incomplete_json() {
        assert!(schema_check("{}", Mode::Batch).is_err());
        assert!(schema_check("", Mode::Both).is_err());
    }

    #[test]
    fn append_only_guard_rejects_rewrites_and_drops() {
        let old = vec!["{\"a\": 1}".to_string(), "{\"b\": 2}".to_string()];
        let appended = vec![old[0].clone(), old[1].clone(), "{\"c\": 3}".to_string()];
        assert!(assert_append_only(&old, &appended).is_ok());
        assert!(
            assert_append_only(&old, &old).is_ok(),
            "no-op carry-forward"
        );
        assert!(assert_append_only(&[], &appended).is_ok(), "fresh record");

        let dropped = vec![old[0].clone()];
        assert!(
            assert_append_only(&old, &dropped).is_err(),
            "shrunk history"
        );
        let rewritten = vec![old[0].clone(), "{\"b\": 99}".to_string()];
        assert!(
            assert_append_only(&old, &rewritten).is_err(),
            "rewritten entry"
        );
        let reordered = vec![old[1].clone(), old[0].clone()];
        assert!(assert_append_only(&old, &reordered).is_err(), "reordered");
    }

    #[test]
    fn regression_reference_is_the_last_trajectory_entry() {
        let json = r#"{
  "trajectory": [
    {"date": "2026-07-01", "label": "old", "countmin": 1000000, "ams": 50},
    {"date": "2026-08-01", "label": "new", "countmin": 2000000, "ams": 60}
  ]
}"#;
        assert_eq!(last_trajectory_countmin(json), Some(2_000_000.0));
        assert_eq!(last_trajectory_countmin("{}"), None, "no trajectory");
        let null_cell = r#"{
  "trajectory": [
    {"date": "2026-07-01", "label": "x", "countmin": null}
  ]
}"#;
        assert_eq!(last_trajectory_countmin(null_cell), None, "null cell");
    }

    #[test]
    fn trajectory_extraction_handles_the_pre_trajectory_format() {
        // The PR 3 recording had rows but no trajectory array and no mode field.
        let old = r#"{
  "rows": [
    {"algorithm": "AMS(5x48)", "tracker": "full", "stream": "zipf-1.1", "items": 262144, "best_elapsed_s": 0.791214, "items_per_sec": 331319, "state_changes": 262144}
  ]
}"#;
        assert_eq!(trajectory_inner(old), None);
        assert_eq!(extract_cell(old, "AMS", "full", "zipf"), Some(331319.0));
        assert_eq!(extract_cell(old, "AMS", "lean", "zipf"), None);
    }
}
