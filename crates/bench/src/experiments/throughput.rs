//! Experiment T2 — sustained single-thread update throughput (items/sec).
//!
//! The paper's thesis is that state changes — not instructions — are the scarce
//! resource, which only holds water if the measurement substrate itself costs almost
//! nothing.  This experiment times `process_stream` for every algorithm in the
//! repository on three workloads (Zipf, uniform, and a synthetic netflow trace) and
//! reports items/sec, so the performance trajectory of the hot path is recorded in a
//! machine-readable `BENCH_throughput.json` at the repository root from this PR
//! forward (see `fig_throughput`).
//!
//! Timing methodology: per (algorithm, stream) cell the stream is processed once as a
//! warm-up and then `samples` more times on freshly constructed instances; the **best**
//! wall-clock time is reported (minimum is the standard estimator for a deterministic
//! workload on a noisy machine — all other samples are strictly noise-inflated).
//! Construction is outside the timed region; `process_stream` (and therefore the
//! batched epoch accounting path) is what is measured.

use std::time::Instant;

use fsc::sparse_recovery::FewStateSparseRecovery;
use fsc::{FewStateHeavyHitters, FpEstimator, Params, SampleAndHold};
use fsc_baselines::{
    AmsSketch, CountMin, CountSketch, MisraGries, SampleAndHoldClassic, SpaceSaving,
};
use fsc_state::{StateTracker, StreamAlgorithm};
use fsc_streamgen::netflow::{flow_trace, FlowTraceSpec};
use fsc_streamgen::uniform::uniform_stream;
use fsc_streamgen::zipf::zipf_stream;

use crate::table::{f, Table};
use crate::Scale;

/// One measured (algorithm, stream) cell.
#[derive(Debug, Clone)]
pub struct Row {
    /// Algorithm name (as reported by [`StreamAlgorithm::name`]).
    pub algorithm: String,
    /// Tracker backend the instance ran with (`"full"` or `"lean"`).
    pub tracker: &'static str,
    /// Stream label.
    pub stream: String,
    /// Number of stream updates processed per run.
    pub items: usize,
    /// Best wall-clock seconds over the timed samples.
    pub best_elapsed_s: f64,
    /// `items / best_elapsed_s`.
    pub items_per_sec: f64,
    /// State changes recorded by the run (identical across samples — determinism).
    pub state_changes: u64,
}

/// The full measurement set plus the metadata needed to reproduce it.
#[derive(Debug, Clone)]
pub struct Report {
    /// `"Quick"` or `"Full"`.
    pub scale: &'static str,
    /// Timed samples per cell (after one warm-up).
    pub samples: usize,
    /// `(label, universe, length)` per stream.
    pub streams: Vec<(String, usize, usize)>,
    /// All measured cells.
    pub rows: Vec<Row>,
}

impl Report {
    /// The headline cell: CountMin on the Zipf stream under the exact-accounting
    /// (full) tracker — the row the PR-over-PR perf trajectory is anchored to.
    pub fn headline(&self) -> Option<&Row> {
        self.rows.iter().find(|r| {
            r.algorithm.starts_with("CountMin")
                && r.tracker == "full"
                && r.stream.starts_with("zipf")
        })
    }

    /// Renders the report as pretty-printed JSON (hand-rolled: the workspace is
    /// offline and carries no serde).  `baseline_countmin` is the pre-PR headline
    /// items/sec measured by this same harness, used to record the speedup.
    pub fn to_json(&self, baseline_countmin: Option<f64>) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"experiment\": \"throughput\",\n");
        out.push_str(&format!("  \"scale\": \"{}\",\n", self.scale));
        out.push_str(&format!("  \"samples\": {},\n", self.samples));
        out.push_str("  \"unit\": \"items_per_sec\",\n");
        out.push_str("  \"streams\": [\n");
        for (i, (label, n, m)) in self.streams.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{label}\", \"universe\": {n}, \"length\": {m}}}{}\n",
                if i + 1 < self.streams.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"algorithm\": \"{}\", \"tracker\": \"{}\", \"stream\": \"{}\", \
                 \"items\": {}, \"best_elapsed_s\": {:.6}, \"items_per_sec\": {:.0}, \
                 \"state_changes\": {}}}{}\n",
                r.algorithm,
                r.tracker,
                r.stream,
                r.items,
                r.best_elapsed_s,
                r.items_per_sec,
                r.state_changes,
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]");
        if let Some(head) = self.headline() {
            out.push_str(",\n  \"headline\": {\n");
            out.push_str(&format!(
                "    \"algorithm\": \"{}\", \"stream\": \"{}\",\n",
                head.algorithm, head.stream
            ));
            out.push_str(&format!("    \"items_per_sec\": {:.0}", head.items_per_sec));
            if let Some(base) = baseline_countmin {
                out.push_str(&format!(",\n    \"pre_pr_items_per_sec\": {base:.0}"));
                if base > 0.0 {
                    out.push_str(&format!(
                        ",\n    \"speedup_vs_pre_pr\": {:.2}",
                        head.items_per_sec / base
                    ));
                }
            }
            out.push_str("\n  }");
        }
        out.push_str("\n}\n");
        out
    }
}

/// A named constructor for one algorithm instance (fresh per timed sample).
type Case = (
    &'static str,
    Box<dyn Fn(usize, usize) -> Box<dyn StreamAlgorithm>>,
);

fn cases() -> Vec<Case> {
    vec![
        (
            "full",
            Box::new(|n, m| Box::new(SampleAndHold::standalone(&Params::new(2.0, 0.2, n, m)))),
        ),
        (
            "full",
            Box::new(|n, m| Box::new(FewStateHeavyHitters::new(Params::new(2.0, 0.25, n, m)))),
        ),
        (
            "full",
            Box::new(|n, m| Box::new(FpEstimator::new(Params::new(2.0, 0.3, n, m)))),
        ),
        (
            "full",
            Box::new(|_, _| Box::new(FewStateSparseRecovery::new(1 << 12))),
        ),
        (
            "full",
            Box::new(|_, _| Box::new(MisraGries::for_epsilon(0.05))),
        ),
        (
            "full",
            Box::new(|_, _| Box::new(SpaceSaving::for_epsilon(0.05))),
        ),
        (
            "full",
            Box::new(|_, _| Box::new(CountMin::new(1 << 10, 4, 1))),
        ),
        (
            "lean",
            Box::new(|_, _| Box::new(CountMin::with_tracker(&StateTracker::lean(), 1 << 10, 4, 1))),
        ),
        (
            "full",
            Box::new(|_, _| Box::new(CountSketch::new(1 << 10, 5, 2))),
        ),
        ("full", Box::new(|_, _| Box::new(AmsSketch::new(5, 48, 3)))),
        (
            "full",
            Box::new(|_, _| Box::new(SampleAndHoldClassic::new(0.01, 4))),
        ),
    ]
}

/// Runs the throughput sweep and returns the printed table plus the raw report.
pub fn run(scale: Scale) -> (Table, Report) {
    let n = scale.pick(1 << 12, 1 << 14);
    let m = scale.pick(1 << 14, 1 << 18);
    let samples = scale.pick(2, 3);

    let netflow = flow_trace(&FlowTraceSpec {
        elephants: scale.pick(8, 32),
        mice: (m / 4).max(64),
        seed: 9,
        ..FlowTraceSpec::default()
    });
    let streams: Vec<(String, usize, Vec<u64>)> = vec![
        ("zipf-1.1".to_string(), n, zipf_stream(n, m, 1.1, 7)),
        ("uniform".to_string(), n, uniform_stream(n, m, 8)),
        ("netflow".to_string(), netflow.flows, netflow.packets),
    ];

    let mut report = Report {
        scale: scale.pick("Quick", "Full"),
        samples,
        streams: streams
            .iter()
            .map(|(label, n, s)| (label.clone(), *n, s.len()))
            .collect(),
        rows: Vec::new(),
    };

    for (tracker, make) in cases() {
        for (label, universe, stream) in &streams {
            let mut best = f64::INFINITY;
            let mut state_changes = 0;
            let mut algorithm = String::new();
            // One warm-up + `samples` timed runs, each on a fresh instance.
            for sample in 0..=samples {
                let mut alg = make(*universe, stream.len());
                let start = Instant::now();
                alg.process_stream(stream);
                let elapsed = start.elapsed().as_secs_f64();
                if sample > 0 {
                    best = best.min(elapsed);
                }
                state_changes = alg.report().state_changes;
                algorithm = alg.name().to_string();
            }
            report.rows.push(Row {
                algorithm,
                tracker,
                stream: label.clone(),
                items: stream.len(),
                best_elapsed_s: best,
                items_per_sec: stream.len() as f64 / best,
                state_changes,
            });
        }
    }

    let mut table = Table::new(
        &format!(
            "Throughput — items/sec over {} timed samples (best), m = {m}",
            samples
        ),
        &[
            "algorithm",
            "tracker",
            "stream",
            "items/sec",
            "state changes",
        ],
    );
    for r in &report.rows {
        table.row(vec![
            r.algorithm.clone(),
            r.tracker.to_string(),
            r.stream.clone(),
            f(r.items_per_sec),
            r.state_changes.to_string(),
        ]);
    }
    (table, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_measures_every_cell() {
        let (table, report) = run(Scale::Quick);
        assert_eq!(report.rows.len(), 11 * 3);
        assert_eq!(table.len(), report.rows.len());
        for row in &report.rows {
            assert!(row.items_per_sec > 0.0, "{}: no throughput", row.algorithm);
            assert!(row.items > 0);
        }
        let head = report.headline().expect("CountMin/zipf headline row");
        assert_eq!(head.tracker, "full");
        let json = report.to_json(Some(head.items_per_sec / 2.0));
        assert!(json.contains("\"speedup_vs_pre_pr\": 2.00"));
        assert!(json.contains("\"experiment\": \"throughput\""));
        // Determinism of the answers (not the timings): state changes recorded.
        assert!(report.rows.iter().any(|r| r.state_changes > 0));
    }
}
