//! Regenerates experiment F10: F_p estimation for p < 1.

fn main() {
    let scale = fsc_bench::Scale::from_args();
    let (table, _) = fsc_bench::experiments::p_small::run(scale);
    table.print();
}
