//! Regenerates experiment F7: Morris counter accuracy and state changes.

fn main() {
    let scale = fsc_bench::Scale::from_args();
    let (table, _) = fsc_bench::experiments::morris::run(scale);
    table.print();
}
