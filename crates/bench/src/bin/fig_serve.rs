//! F13 — cached serving views under mixed read/write load; writes
//! `BENCH_serve.json`.
//!
//! ```text
//! cargo run -p fsc-bench --release --bin fig_serve             # full scale
//! cargo run -p fsc-bench --release --bin fig_serve -- --quick  # CI self-check
//! ... fig_serve -- --label "PR 7 serving views"                # trajectory label
//! ... fig_serve -- --out /tmp/serve.json                       # custom path
//! ```
//!
//! Three sweeps (see `experiments::serve`): cached queries/sec and view rebuilds
//! across read:write ratios for every engine-capable algorithm, windowed
//! staleness across the **whole** registry, and a multi-threaded driver where
//! reader threads serve cached views while a writer ingests.  The binary
//! **fails** (non-zero exit) if any cached answer diverges from the
//! always-rebuild oracle, if rebuild counts vary with the read ratio (rebuilds
//! must track state changes, not queries), if concurrent readers disagree with a
//! fresh rebuild at quiescence, or if the headline stops telling the paper's
//! story: the best few-state algorithm must rebuild at most 10% (full scale;
//! 50% at `--quick`) as often as the write-heaviest baseline at equal ingest.
//! The emitted JSON is schema-checked.
//!
//! The JSON carries a `trajectory` array like the throughput record: existing
//! entries are carried forward verbatim and this run's entry is appended.  Only
//! a full-scale run defaults to the committed repo-root `BENCH_serve.json`;
//! `--quick` defaults to a temp file so a smoke run cannot replace the recorded
//! results with reduced-scale numbers.

use fsc_bench::experiments::serve::{
    concurrent, concurrent_check, concurrent_table, headline_check, headline_threshold, run,
    schema_check, staleness, staleness_table, to_json, trajectory_entry,
};
use fsc_bench::experiments::throughput::trajectory_inner;
use fsc_bench::Scale;

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Today's date as `YYYY-MM-DD` (UTC), from the system clock — no external crate.
/// Uses the standard civil-from-days algorithm.
fn today() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

fn main() {
    let scale = Scale::from_args();
    let label = flag_value("--label").unwrap_or_else(|| "unlabelled recording".to_string());
    let out_path = flag_value("--out").unwrap_or_else(|| match scale {
        Scale::Full => format!("{}/../../BENCH_serve.json", env!("CARGO_MANIFEST_DIR")),
        Scale::Quick => std::env::temp_dir()
            .join("BENCH_serve.quick.json")
            .to_string_lossy()
            .into_owned(),
    });

    let (table, rows) = run(scale);
    table.print();
    if let Err(err) = fsc_bench::experiments::serve::serve_check(&rows) {
        eprintln!("error: {err}");
        std::process::exit(1);
    }
    println!(
        "serve check: cached answers match the always-rebuild oracle and rebuild \
         counts are identical across read:write ratios"
    );

    let stale = staleness(scale);
    staleness_table(&stale).print();
    if let Err(err) = headline_check(&stale, headline_threshold(scale)) {
        eprintln!("error: {err}");
        std::process::exit(1);
    }
    println!(
        "headline check: few-state serving rebuilds track state changes, not ingest \
         (threshold {})",
        headline_threshold(scale)
    );

    let threads = concurrent(scale);
    concurrent_table(&threads).print();
    if let Err(err) = concurrent_check(&threads) {
        eprintln!("error: {err}");
        std::process::exit(1);
    }
    println!(
        "concurrent check: reader threads served cached views during ingest and \
         matched a fresh rebuild at quiescence"
    );

    // Carry the existing trajectory forward, then append this run's entry.
    let old = std::fs::read_to_string(&out_path).unwrap_or_default();
    let mut trajectory = trajectory_inner(&old).unwrap_or_default();
    trajectory.push(trajectory_entry(&today(), &label, scale, &rows, &stale));

    let json = to_json(scale, &rows, &stale, &threads, &trajectory);
    if let Err(err) = schema_check(&json) {
        eprintln!("error: {err}");
        std::process::exit(1);
    }
    std::fs::write(&out_path, &json).expect("write BENCH_serve.json");
    if let Some(head) = rows
        .iter()
        .filter(|r| r.id == "count_min")
        .max_by_key(|r| r.reads_per_batch)
    {
        println!(
            "headline: CountMin cached serve = {:.2} Mqueries/s at {} reads/batch \
             ({} rebuilds over {} updates)",
            head.queries_per_sec / 1e6,
            head.reads_per_batch,
            head.rebuilds,
            head.updates
        );
    }
    println!("trajectory: {} entr(y/ies) recorded", trajectory.len());
    println!("wrote {out_path}");
}
