//! Runs every experiment in DESIGN.md order and prints all tables.
//!
//! `cargo run -p fsc-bench --release --bin run_all`            — full scale (minutes)
//! `cargo run -p fsc-bench --release --bin run_all -- --quick` — reduced scale
//! `... run_all -- --quick --threads 4`                        — parallel experiment cells
//!
//! `--threads N` runs independent experiment cells on up to `N` worker threads (via
//! [`fsc_bench::sharded::parallel_map`]).  Every experiment is a deterministic function
//! of its seeds, so the output is identical at every thread count; only the wall-clock
//! changes.  Tables stream out progressively in DESIGN.md order: each table prints as
//! soon as it and every earlier table have finished.

use std::collections::BTreeMap;
use std::sync::Mutex;

use fsc_bench::sharded::parallel_map;
use fsc_bench::{experiments, threads_from_args, Scale};

/// One experiment cell: deferred work producing its rendered output.
type Cell = Box<dyn FnOnce() -> String + Send>;

fn main() {
    let scale = Scale::from_args();
    let threads = threads_from_args();
    println!("# Few State Changes — experiment suite ({scale:?} scale, {threads} thread(s))\n");

    let cells: Vec<Cell> = vec![
        Box::new(move || experiments::table1::run(scale).0.render()),
        Box::new(move || {
            let (f1, f2, series) = experiments::scaling::run(scale);
            let mut out = f1.render();
            for s in &series {
                out.push_str(&format!(
                    "p = {:.1}: fitted state-change slope {:.3} (theory {:.3})\n",
                    s.p, s.state_slope, s.predicted_state_slope
                ));
            }
            out.push_str(&f2.render());
            out
        }),
        // The two heaviest sweeps additionally parallelise their own grid cells with
        // their own workers (briefly oversubscribing `--threads` while they run — the
        // cells are compute-bound and deterministic, so only scheduling is affected).
        Box::new(move || {
            experiments::accuracy::run_with_threads(scale, threads)
                .0
                .render()
        }),
        Box::new(move || experiments::heavy_hitters::run(scale).0.render()),
        Box::new(move || experiments::lower_bound::run(scale).0.render()),
        Box::new(move || experiments::counterexample::run(scale).0.render()),
        Box::new(move || experiments::morris::run(scale).0.render()),
        Box::new(move || experiments::entropy::run(scale).0.render()),
        Box::new(move || experiments::nvm::run(scale).0.render()),
        Box::new(move || {
            experiments::p_small::run_with_threads(scale, threads)
                .0
                .render()
        }),
        Box::new(move || experiments::sharding::run(scale).0.render()),
        Box::new(move || experiments::engine::run(scale).0.render()),
        Box::new(move || {
            let mut out = experiments::serve::run(scale).0.render();
            out.push_str(
                &experiments::serve::staleness_table(&experiments::serve::staleness(scale))
                    .render(),
            );
            out.push_str(
                &experiments::serve::concurrent_table(&experiments::serve::concurrent(scale))
                    .render(),
            );
            out
        }),
        Box::new(move || {
            let mut out = experiments::serve_net::run(scale).0.render();
            out.push_str(&experiments::serve_net::fault_matrix().0.render());
            out
        }),
        Box::new(move || {
            let mut out = experiments::recovery::crash_matrix().0.render();
            out.push_str(&experiments::recovery::cadence_sweep(scale).0.render());
            out
        }),
    ];

    // Print progressively: finished cells are buffered only until every earlier cell
    // (in DESIGN.md order) has printed, so a long full-scale run shows output as it
    // goes instead of staying silent until the slowest cell ends.
    let printer: Mutex<(usize, BTreeMap<usize, String>)> = Mutex::new((0, BTreeMap::new()));
    parallel_map(cells, threads, |index, cell| {
        let output = cell();
        // Tolerate a poisoned lock (e.g. a sibling worker hit a broken pipe while
        // printing): the buffer is still consistent, each index is written once.
        let mut guard = printer.lock().unwrap_or_else(|p| p.into_inner());
        let (next, pending) = &mut *guard;
        pending.insert(index, output);
        while let Some(ready) = pending.remove(next) {
            println!("{ready}");
            *next += 1;
        }
    });
}
