//! Runs every experiment in DESIGN.md order and prints all tables.
//!
//! `cargo run -p fsc-bench --release --bin run_all`          — full scale (minutes)
//! `cargo run -p fsc-bench --release --bin run_all -- --quick` — reduced scale

use fsc_bench::{experiments, Scale};

fn main() {
    let scale = Scale::from_args();
    println!("# Few State Changes — experiment suite ({scale:?} scale)\n");

    let (t1, _) = experiments::table1::run(scale);
    t1.print();

    let (f1, f2, series) = experiments::scaling::run(scale);
    f1.print();
    for s in &series {
        println!(
            "p = {:.1}: fitted state-change slope {:.3} (theory {:.3})",
            s.p, s.state_slope, s.predicted_state_slope
        );
    }
    f2.print();

    let (f3, _) = experiments::accuracy::run(scale);
    f3.print();
    let (f4, _) = experiments::heavy_hitters::run(scale);
    f4.print();
    let (f5, _) = experiments::lower_bound::run(scale);
    f5.print();
    let (f6, _) = experiments::counterexample::run(scale);
    f6.print();
    let (f7, _) = experiments::morris::run(scale);
    f7.print();
    let (f8, _) = experiments::entropy::run(scale);
    f8.print();
    let (f9, _) = experiments::nvm::run(scale);
    f9.print();
    let (f10, _) = experiments::p_small::run(scale);
    f10.print();
}
