//! Regenerates experiment F6: the Section 1.4 counterexample stream.

fn main() {
    let scale = fsc_bench::Scale::from_args();
    let (table, _) = fsc_bench::experiments::counterexample::run(scale);
    table.print();
}
