//! Regenerates experiment F5: the state-change lower bound phase transition.

fn main() {
    let scale = fsc_bench::Scale::from_args();
    let (table, _) = fsc_bench::experiments::lower_bound::run(scale);
    table.print();
}
