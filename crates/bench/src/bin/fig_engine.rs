//! F12 — sharded engine vs single shard across config-driven scenarios, with
//! mid-stream checkpoint/failover and the checkpoint-bytes-vs-stream-length
//! curves; writes `BENCH_engine.json`.
//!
//! ```text
//! cargo run -p fsc-bench --release --bin fig_engine             # full scale
//! cargo run -p fsc-bench --release --bin fig_engine -- --quick  # CI self-check
//! ... fig_engine -- --out /tmp/engine.json                      # custom path
//! ```
//!
//! The binary **fails** (non-zero exit) if any cell violates the engine's laws —
//! a mid-stream failover that does not reproduce the pre-crash engine (delta-mode
//! scenarios fail over from the chain tip and replay every retained epoch), an
//! exact-merge union that diverges from the single-shard reference, or a scenario
//! that never exercised the checkpoint path — or if the standalone delta-curve
//! sweep stops telling the paper's story: at least one few-state-change algorithm
//! must persist measurably sublinearly and clearly beat the write-heaviest
//! baseline.  The emitted JSON is schema-checked.  CI runs `--quick`, so a
//! regression in the snapshot/delta/merge layers fails the build here rather than
//! in a downstream consumer.
//!
//! Like `fig_throughput`, only a full-scale run defaults to the committed repo-root
//! record; `--quick` defaults to a temp file so a smoke run cannot replace the
//! recorded results with reduced-scale numbers.

use fsc_bench::experiments::engine::{
    curves_check, curves_table, delta_curves, equivalence_check, run, schema_check, to_json,
};
use fsc_bench::Scale;

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let scale = Scale::from_args();
    let out_path = flag_value("--out").unwrap_or_else(|| match scale {
        Scale::Full => format!("{}/../../BENCH_engine.json", env!("CARGO_MANIFEST_DIR")),
        Scale::Quick => std::env::temp_dir()
            .join("BENCH_engine.quick.json")
            .to_string_lossy()
            .into_owned(),
    });

    let (table, rows) = run(scale);
    table.print();

    if let Err(err) = equivalence_check(&rows) {
        eprintln!("error: {err}");
        std::process::exit(1);
    }
    println!(
        "equivalence check: every failover reproduced its engine (delta chains included) \
         and every exact-merge union matched the single shard"
    );

    let curves = delta_curves(scale);
    curves_table(&curves).print();
    if let Err(err) = curves_check(&curves) {
        eprintln!("error: {err}");
        std::process::exit(1);
    }
    println!(
        "curves check: few-state-change algorithms persist sublinearly and beat the \
         write-heavy baselines on checkpoint bytes"
    );

    let json = to_json(scale, &rows, &curves);
    if let Err(err) = schema_check(&json) {
        eprintln!("error: {err}");
        std::process::exit(1);
    }
    std::fs::write(&out_path, &json).expect("write BENCH_engine.json");
    println!("wrote {out_path}");
}
