//! Regenerates experiment F4: heavy-hitter quality vs classic summaries.

fn main() {
    let scale = fsc_bench::Scale::from_args();
    let (table, _) = fsc_bench::experiments::heavy_hitters::run(scale);
    table.print();
}
