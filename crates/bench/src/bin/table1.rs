//! Regenerates Table 1 of the paper (experiment T1 in DESIGN.md).

fn main() {
    let scale = fsc_bench::Scale::from_args();
    let (table, _) = fsc_bench::experiments::table1::run(scale);
    table.print();
}
