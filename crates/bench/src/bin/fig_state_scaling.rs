//! Regenerates experiment F1: state-change scaling of the F_p estimator.

fn main() {
    let scale = fsc_bench::Scale::from_args();
    let (state_table, _, series) = fsc_bench::experiments::scaling::run(scale);
    state_table.print();
    for s in series {
        println!(
            "p = {:.1}: fitted state-change slope {:.3} (theory {:.3})",
            s.p, s.state_slope, s.predicted_state_slope
        );
    }
}
