//! T2 — update-throughput sweep; writes `BENCH_throughput.json` at the repo root.
//!
//! ```text
//! cargo run -p fsc-bench --release --bin fig_throughput                 # full scale
//! cargo run -p fsc-bench --release --bin fig_throughput -- --quick     # CI smoke
//! ... fig_throughput -- --mode batch|item|both                         # update path(s)
//! ... fig_throughput -- --label "PR 4 batch kernels"                   # trajectory label
//! ... fig_throughput -- --baseline-countmin 9205209                    # record speedup
//! ... fig_throughput -- --out /tmp/bench.json                          # custom path
//! ```
//!
//! `--mode both` (the default) measures every algorithm through both the batch
//! kernels (`process_stream`) and the per-item `update` loop, and **fails the run**
//! if any cell's state-change count differs between the two — a batch kernel that
//! silently diverges from the per-item path fails CI, not a later experiment.  The
//! emitted JSON is also schema-checked after writing.
//!
//! The JSON carries a `trajectory` array recording one dated entry per recording:
//! existing entries are carried forward verbatim and this run's entry is appended,
//! so the perf history across PRs stays machine-readable.  A pre-trajectory record
//! (the PR 3 format) is seeded into the history from its own rows before appending.
//!
//! `--baseline-countmin ITEMS_PER_SEC` embeds a pre-change headline measurement
//! (taken with this same harness on the same host) so the JSON records the speedup
//! of the CountMin full-tracker hot path against it.
//!
//! Only a **full-scale** run defaults to the committed repo-root
//! `BENCH_throughput.json`; `--quick` defaults to a file in the system temp directory
//! so a smoke run can never silently replace the recorded perf trajectory with
//! reduced-scale noise (pass `--out` explicitly to override either default).

use fsc_bench::experiments::throughput::{
    self, divergence_check, extract_cell, schema_check, trajectory_inner, Mode,
};
use fsc_bench::Scale;

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Today's date as `YYYY-MM-DD` (UTC), from the system clock — no external crate.
/// Uses the standard civil-from-days algorithm.
fn today() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// Seeds a trajectory from a pre-trajectory (PR 3 format) record's own rows, so the
/// old headline numbers stay machine-readable instead of being overwritten.
fn seed_entry_from_legacy(old: &str) -> Option<String> {
    let cell = |alg: &str| {
        extract_cell(old, alg, "full", "zipf")
            .map(|v| format!("{v:.0}"))
            .unwrap_or_else(|| "null".to_string())
    };
    // Only synthesize when the legacy record actually has rows to read.
    extract_cell(old, "CountMin", "full", "zipf")?;
    Some(format!(
        "{{\"date\": \"pre-existing\", \"label\": \"PR 3 recording (pre batch kernels)\", \
         \"scale\": \"Full\", \"stream\": \"zipf-1.1\", \"mode\": \"batch\", \
         \"countmin\": {}, \"ams\": {}, \"few_state_heavy_hitters\": {}, \
         \"fp_estimator\": {}, \"sample_and_hold\": {}}}",
        cell("CountMin"),
        cell("AMS"),
        cell("FewStateHeavyHitters"),
        cell("FpEstimator"),
        cell("SampleAndHold(")
    ))
}

fn main() {
    let scale = Scale::from_args();
    let mode = match flag_value("--mode") {
        Some(v) => Mode::parse(&v).unwrap_or_else(|| {
            eprintln!("error: --mode expects batch|item|both, got {v:?}");
            std::process::exit(2);
        }),
        None => Mode::Both,
    };
    let label = flag_value("--label").unwrap_or_else(|| "unlabelled recording".to_string());
    let baseline: Option<f64> = flag_value("--baseline-countmin").map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: --baseline-countmin expects a plain items/sec number, got {v:?}");
            std::process::exit(2);
        })
    });
    let out_path = flag_value("--out").unwrap_or_else(|| match scale {
        // The committed perf-trajectory record is full-scale by definition.
        Scale::Full => format!("{}/../../BENCH_throughput.json", env!("CARGO_MANIFEST_DIR")),
        Scale::Quick => std::env::temp_dir()
            .join("BENCH_throughput.quick.json")
            .to_string_lossy()
            .into_owned(),
    });

    let (table, report) = throughput::run(scale, mode);
    table.print();

    if mode == Mode::Both {
        if let Err(err) = divergence_check(&report) {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
        println!("divergence check: batch and per-item state changes agree on every cell");
    }

    // Carry the existing trajectory forward (or seed one from a legacy record), then
    // append this run's entry.
    let old = std::fs::read_to_string(&out_path).unwrap_or_default();
    let mut trajectory = trajectory_inner(&old)
        .or_else(|| seed_entry_from_legacy(&old).map(|e| vec![e]))
        .unwrap_or_default();
    trajectory.push(report.trajectory_entry(&today(), &label));

    let json = report.to_json(baseline, &trajectory);
    if let Err(err) = schema_check(&json, mode) {
        eprintln!("error: {err}");
        std::process::exit(1);
    }
    std::fs::write(&out_path, &json).expect("write BENCH_throughput.json");
    if let Some(head) = report.headline() {
        println!(
            "headline: {} on {} ({}) = {:.2} Mitems/s",
            head.algorithm,
            head.stream,
            head.mode,
            head.items_per_sec / 1e6
        );
        if let Some(base) = baseline {
            println!(
                "speedup vs pre-PR hot path: {:.2}x (baseline {:.2} Mitems/s)",
                head.items_per_sec / base,
                base / 1e6
            );
        }
    }
    println!("trajectory: {} entr(y/ies) recorded", trajectory.len());
    println!("wrote {out_path}");
}
