//! T2 — update-throughput sweep; writes `BENCH_throughput.json` at the repo root.
//!
//! ```text
//! cargo run -p fsc-bench --release --bin fig_throughput                 # full scale
//! cargo run -p fsc-bench --release --bin fig_throughput -- --quick     # CI smoke
//! ... fig_throughput -- --mode batch|item|both                         # update path(s)
//! ... fig_throughput -- --label "PR 4 batch kernels"                   # trajectory label
//! ... fig_throughput -- --baseline-countmin 9205209                    # record speedup
//! ... fig_throughput -- --lanes 1|2|4|8                                # kernel lane width
//! ... fig_throughput -- --regression-gate                              # CI perf gate
//! ... fig_throughput -- --out /tmp/bench.json                          # custom path
//! ```
//!
//! `--mode both` (the default) measures every algorithm through both the batch
//! kernels (`process_stream`) and the per-item `update` loop, and **fails the run**
//! if any cell's state-change count differs between the two — a batch kernel that
//! silently diverges from the per-item path fails CI, not a later experiment.  The
//! emitted JSON is also schema-checked after writing.
//!
//! The JSON carries a `trajectory` array recording one dated entry per recording
//! (now including the detected host core count and the batch-kernel lane width):
//! existing entries are carried forward verbatim and this run's entry is appended,
//! so the perf history across PRs stays machine-readable.  A pre-trajectory record
//! (the PR 3 format) is seeded into the history from its own rows before appending.
//! Before writing, the run **refuses to overwrite prior trajectory entries**: if
//! the new array is not a verbatim in-order extension of the recorded one, the run
//! fails instead of rewriting history.
//!
//! `--lanes W` forces the lane-packed sketch kernels (CountMin/CountSketch/AMS) to
//! width `W ∈ {1, 2, 4, 8}`; `--lanes 1` is the scalar fallback, so CI exercising
//! both `--lanes 1` and the default proves the divergence check across widths.
//!
//! `--regression-gate` compares this run's CountMin headline against the
//! `countmin` cell of the **last trajectory entry** in the committed repo-root
//! `BENCH_throughput.json` and exits non-zero if the fresh measurement falls more
//! than [`REGRESSION_TOLERANCE`] below it.  With no recorded reference (fresh
//! clone, legacy record) the gate passes with a note rather than blocking.
//!
//! `--baseline-countmin ITEMS_PER_SEC` embeds a pre-change headline measurement
//! (taken with this same harness on the same host) so the JSON records the speedup
//! of the CountMin full-tracker hot path against it.
//!
//! Only a **full-scale** run defaults to the committed repo-root
//! `BENCH_throughput.json`; `--quick` defaults to a file in the system temp directory
//! so a smoke run can never silently replace the recorded perf trajectory with
//! reduced-scale noise (pass `--out` explicitly to override either default).

use fsc_bench::experiments::throughput::{
    self, assert_append_only, divergence_check, extract_cell, last_trajectory_countmin,
    schema_check, trajectory_inner, Mode,
};
use fsc_bench::Scale;

/// Maximum fraction the fresh CountMin headline may fall below the last recorded
/// trajectory entry before `--regression-gate` fails the run.
///
/// 15% is deliberately generous for a CI gate: the committed trajectory entries are
/// **full-scale** recordings while CI gates at `--quick` scale (shorter streams
/// carry relatively more fixed overhead), the CI host is not the recording host,
/// and a shared/1-CPU container adds real run-to-run noise even under best-of
/// sampling.  The gate is meant to catch a kernel that got structurally slower
/// (a regression eating the lane-packing win), not a 5% wobble; if it fires,
/// re-run once before digging in.
const REGRESSION_TOLERANCE: f64 = 0.15;

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Today's date as `YYYY-MM-DD` (UTC), from the system clock — no external crate.
/// Uses the standard civil-from-days algorithm.
fn today() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// Seeds a trajectory from a pre-trajectory (PR 3 format) record's own rows, so the
/// old headline numbers stay machine-readable instead of being overwritten.
fn seed_entry_from_legacy(old: &str) -> Option<String> {
    let cell = |alg: &str| {
        extract_cell(old, alg, "full", "zipf")
            .map(|v| format!("{v:.0}"))
            .unwrap_or_else(|| "null".to_string())
    };
    // Only synthesize when the legacy record actually has rows to read.
    extract_cell(old, "CountMin", "full", "zipf")?;
    Some(format!(
        "{{\"date\": \"pre-existing\", \"label\": \"PR 3 recording (pre batch kernels)\", \
         \"scale\": \"Full\", \"stream\": \"zipf-1.1\", \"mode\": \"batch\", \
         \"countmin\": {}, \"ams\": {}, \"few_state_heavy_hitters\": {}, \
         \"fp_estimator\": {}, \"sample_and_hold\": {}}}",
        cell("CountMin"),
        cell("AMS"),
        cell("FewStateHeavyHitters"),
        cell("FpEstimator"),
        cell("SampleAndHold(")
    ))
}

fn main() {
    let scale = Scale::from_args();
    let mode = match flag_value("--mode") {
        Some(v) => Mode::parse(&v).unwrap_or_else(|| {
            eprintln!("error: --mode expects batch|item|both, got {v:?}");
            std::process::exit(2);
        }),
        None => Mode::Both,
    };
    let label = flag_value("--label").unwrap_or_else(|| "unlabelled recording".to_string());
    let baseline: Option<f64> = flag_value("--baseline-countmin").map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: --baseline-countmin expects a plain items/sec number, got {v:?}");
            std::process::exit(2);
        })
    });
    let lanes: Option<usize> = flag_value("--lanes").map(|v| {
        v.parse()
            .ok()
            .filter(|w| fsc_counters::lanes::is_supported_width(*w))
            .unwrap_or_else(|| {
                eprintln!("error: --lanes expects one of 1|2|4|8, got {v:?}");
                std::process::exit(2);
            })
    });
    let regression_gate = std::env::args().any(|a| a == "--regression-gate");
    let out_path = flag_value("--out").unwrap_or_else(|| match scale {
        // The committed perf-trajectory record is full-scale by definition.
        Scale::Full => format!("{}/../../BENCH_throughput.json", env!("CARGO_MANIFEST_DIR")),
        Scale::Quick => std::env::temp_dir()
            .join("BENCH_throughput.quick.json")
            .to_string_lossy()
            .into_owned(),
    });

    let (table, report) = throughput::run(scale, mode, lanes);
    table.print();
    println!(
        "host: {} core(s) detected; sketch kernels at lane width {}",
        report.host_cores, report.lane_width
    );

    if mode == Mode::Both {
        if let Err(err) = divergence_check(&report) {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
        println!("divergence check: batch and per-item state changes agree on every cell");
    }

    // Carry the existing trajectory forward (or seed one from a legacy record), then
    // append this run's entry.
    let old = std::fs::read_to_string(&out_path).unwrap_or_default();
    let recorded = trajectory_inner(&old).unwrap_or_default();
    let mut trajectory = trajectory_inner(&old)
        .or_else(|| seed_entry_from_legacy(&old).map(|e| vec![e]))
        .unwrap_or_default();
    trajectory.push(report.trajectory_entry(&today(), &label));
    // Refuse to rewrite history: the recorded entries must be a verbatim prefix of
    // what is about to be written.
    if let Err(err) = assert_append_only(&recorded, &trajectory) {
        eprintln!("error: {err}");
        std::process::exit(1);
    }

    let json = report.to_json(baseline, &trajectory);
    if let Err(err) = schema_check(&json, mode) {
        eprintln!("error: {err}");
        std::process::exit(1);
    }
    std::fs::write(&out_path, &json).expect("write BENCH_throughput.json");
    if let Some(head) = report.headline() {
        println!(
            "headline: {} on {} ({}) = {:.2} Mitems/s",
            head.algorithm,
            head.stream,
            head.mode,
            head.items_per_sec / 1e6
        );
        if let Some(base) = baseline {
            println!(
                "speedup vs pre-PR hot path: {:.2}x (baseline {:.2} Mitems/s)",
                head.items_per_sec / base,
                base / 1e6
            );
        }
    }
    println!("trajectory: {} entr(y/ies) recorded", trajectory.len());
    println!("wrote {out_path}");

    if regression_gate {
        // The reference is always the committed repo-root record (the last
        // trajectory entry), regardless of where this run's JSON went — a --quick
        // CI run writes to the temp dir but still gates against recorded history.
        let committed = format!("{}/../../BENCH_throughput.json", env!("CARGO_MANIFEST_DIR"));
        let reference = std::fs::read_to_string(&committed)
            .ok()
            .and_then(|s| last_trajectory_countmin(&s));
        match (reference, report.headline()) {
            (Some(reference), Some(head)) => {
                let floor = reference * (1.0 - REGRESSION_TOLERANCE);
                if head.items_per_sec < floor {
                    eprintln!(
                        "error: throughput regression gate failed: CountMin headline \
                         {:.2} Mitems/s is more than {:.0}% below the last recorded \
                         trajectory entry ({:.2} Mitems/s, floor {:.2})",
                        head.items_per_sec / 1e6,
                        REGRESSION_TOLERANCE * 100.0,
                        reference / 1e6,
                        floor / 1e6
                    );
                    std::process::exit(1);
                }
                println!(
                    "regression gate: {:.2} Mitems/s vs recorded {:.2} Mitems/s \
                     (floor {:.2}, tolerance {:.0}%) — ok",
                    head.items_per_sec / 1e6,
                    reference / 1e6,
                    floor / 1e6,
                    REGRESSION_TOLERANCE * 100.0
                );
            }
            (None, _) => println!(
                "regression gate: no recorded CountMin reference in {committed}; \
                 passing with a note"
            ),
            (_, None) => println!(
                "regression gate: no batch headline in this run (--mode item); \
                 passing with a note"
            ),
        }
    }
}
