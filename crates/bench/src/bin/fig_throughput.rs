//! T2 — update-throughput sweep; writes `BENCH_throughput.json` at the repo root.
//!
//! ```text
//! cargo run -p fsc-bench --release --bin fig_throughput                 # full scale
//! cargo run -p fsc-bench --release --bin fig_throughput -- --quick     # CI smoke
//! ... fig_throughput -- --baseline-countmin 9205209                    # record speedup
//! ... fig_throughput -- --out /tmp/bench.json                          # custom path
//! ```
//!
//! `--baseline-countmin ITEMS_PER_SEC` embeds a pre-change headline measurement (taken
//! with this same harness on the same host) so the JSON records the speedup of the
//! CountMin full-tracker hot path against it.
//!
//! Only a **full-scale** run defaults to the committed repo-root
//! `BENCH_throughput.json`; `--quick` defaults to a file in the system temp directory
//! so a smoke run can never silently replace the recorded perf trajectory with
//! reduced-scale noise (pass `--out` explicitly to override either default).

use fsc_bench::{experiments, Scale};

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let scale = Scale::from_args();
    let baseline: Option<f64> = flag_value("--baseline-countmin").map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: --baseline-countmin expects a plain items/sec number, got {v:?}");
            std::process::exit(2);
        })
    });
    let out_path = flag_value("--out").unwrap_or_else(|| match scale {
        // The committed perf-trajectory record is full-scale by definition.
        Scale::Full => format!("{}/../../BENCH_throughput.json", env!("CARGO_MANIFEST_DIR")),
        Scale::Quick => std::env::temp_dir()
            .join("BENCH_throughput.quick.json")
            .to_string_lossy()
            .into_owned(),
    });

    let (table, report) = experiments::throughput::run(scale);
    table.print();

    let json = report.to_json(baseline);
    std::fs::write(&out_path, &json).expect("write BENCH_throughput.json");
    if let Some(head) = report.headline() {
        println!(
            "headline: {} on {} = {:.2} Mitems/s",
            head.algorithm,
            head.stream,
            head.items_per_sec / 1e6
        );
        if let Some(base) = baseline {
            println!(
                "speedup vs pre-PR hot path: {:.2}x (baseline {:.2} Mitems/s)",
                head.items_per_sec / base,
                base / 1e6
            );
        }
    }
    println!("wrote {out_path}");
}
