//! Regenerates experiment F9: simulated NVM write energy and wear.

fn main() {
    let scale = fsc_bench::Scale::from_args();
    let (table, _) = fsc_bench::experiments::nvm::run(scale);
    table.print();
}
