//! The standalone `fsc-serve` server over the full algorithm registry.
//!
//! ```text
//! cargo run -p fsc-bench --release --bin fsc_serve -- --data-dir /tmp/fsc-data
//! ... fsc_serve -- --addr 127.0.0.1:7070 --data-dir /tmp/fsc-data
//! ... fsc_serve -- --data-dir /tmp/fsc-data --max-inflight 128
//! ... fsc_serve -- --data-dir /tmp/fsc-data --durable          # fsync every ack
//! ... fsc_serve -- --data-dir /tmp/fsc-data --group-commit 16  # relaxed fsync window
//! ```
//!
//! Binds the address (an ephemeral port if `--addr` ends in `:0`), recovers
//! every tenant directory found under the data dir (printing the typed
//! recovery report), and serves until a client sends the `Shutdown` control
//! frame (e.g. `fsc_loadgen -- --shutdown`), which checkpoints every tenant
//! before stopping.  Killing the process instead is the crash path the
//! fault-matrix drills cover: the next start restores the checkpointed chain
//! prefix and replays every acked batch out of the write-ahead journal.  With
//! `--durable` the journal append is fsynced before every ack, so acked
//! batches survive power loss too; the default relaxed mode batches fsyncs
//! every `--group-commit` appends.

use fsc_bench::registry::serve_factory;
use fsc_serve::{Durability, Server, ServerConfig};

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let addr = flag_value("--addr").unwrap_or_else(|| "127.0.0.1:7070".to_string());
    let data_dir = flag_value("--data-dir").unwrap_or_else(|| "fsc-serve-data".to_string());
    let max_inflight: usize = flag_value("--max-inflight")
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let durability = if std::env::args().any(|a| a == "--durable") {
        Durability::AckAfterDurable
    } else {
        Durability::AckAfterApply
    };
    let group_commit: u64 = flag_value("--group-commit")
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);

    let config = ServerConfig::new(&data_dir)
        .with_max_inflight_ingest(max_inflight)
        .with_durability(durability)
        .with_group_commit(group_commit);
    let (server, recovery) = match Server::start(&addr, config, serve_factory()) {
        Ok(started) => started,
        Err(e) => {
            eprintln!("error: binding {addr}: {e}");
            std::process::exit(1);
        }
    };
    if recovery.tenants.is_empty() {
        println!("recovery: fresh data dir, no tenants");
    } else {
        println!("recovery: {recovery}");
    }
    if recovery.failed() > 0 {
        eprintln!(
            "warning: {} tenant(s) failed recovery and are offline (isolation: \
             the rest are serving)",
            recovery.failed()
        );
    }
    println!(
        "serving on {} (data dir {data_dir}, ingest admission bound {max_inflight}, \
         {durability}, group commit {group_commit})",
        server.addr()
    );
    println!(
        "stop with a client Shutdown frame, e.g.: fsc_loadgen -- --addr {} --shutdown",
        server.addr()
    );
    server.join();
    println!("shutdown frame received: all tenants checkpointed, stopped");
}
