//! F15 — durable ingest under every crash point; writes `BENCH_recovery.json`.
//!
//! ```text
//! cargo run -p fsc-bench --release --bin fig_recovery             # full scale
//! cargo run -p fsc-bench --release --bin fig_recovery -- --quick  # CI self-check
//! ... fig_recovery -- --label "PR 8 durable ingest"               # trajectory label
//! ... fig_recovery -- --out /tmp/recovery.json                    # custom path
//! ```
//!
//! Two halves (see `experiments::recovery`): the crash matrix — process kill,
//! a fault-injected crash at each point inside the write path, torn journal
//! append, corrupt journal record, simulated power loss, each in its
//! durability mode — and the cadence sweep pricing recovery across every
//! engine-capable registry algorithm × checkpoint cadence.  The binary
//! **fails** (non-zero exit) if any durable-mode scenario loses an acked
//! batch, any scenario diverges from its registry twin, any sweep cell
//! recovers short or misses the ≥ 2× durable-byte advantage at the tightest
//! cadence, or the emitted JSON fails its schema check.
//!
//! Recovery-time columns measured on a loaded CI container reflect
//! scheduling; recorded full-scale numbers come from an unloaded host.  The
//! zero-loss and equality checks are load-independent.
//!
//! The JSON carries a `trajectory` array like the other records: existing
//! entries are carried forward verbatim and this run's entry is appended.
//! Only a full-scale run defaults to the committed repo-root
//! `BENCH_recovery.json`; `--quick` defaults to a temp file so a smoke run
//! cannot replace the recorded results with reduced-scale numbers.

use fsc_bench::experiments::recovery::{
    cadence_sweep, crash_matrix, durable_ratio, matrix_check, schema_check, sweep_check, to_json,
    trajectory_entry,
};
use fsc_bench::experiments::throughput::trajectory_inner;
use fsc_bench::Scale;

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Today's date as `YYYY-MM-DD` (UTC), from the system clock — no external crate.
/// Uses the standard civil-from-days algorithm.
fn today() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

fn main() {
    let scale = Scale::from_args();
    let label = flag_value("--label").unwrap_or_else(|| "unlabelled recording".to_string());
    let out_path = flag_value("--out").unwrap_or_else(|| match scale {
        Scale::Full => format!("{}/../../BENCH_recovery.json", env!("CARGO_MANIFEST_DIR")),
        Scale::Quick => std::env::temp_dir()
            .join("BENCH_recovery.quick.json")
            .to_string_lossy()
            .into_owned(),
    });

    let (matrix_table, matrix) = crash_matrix();
    matrix_table.print();
    for r in &matrix {
        println!("  {}: {}", r.scenario, r.detail);
    }
    if let Err(err) = matrix_check(&matrix) {
        eprintln!("error: {err}");
        std::process::exit(1);
    }
    println!(
        "crash-matrix check: all {} scenarios recovered exactly; every durable-mode \
         crash point lost zero acked batches",
        matrix.len()
    );

    let (sweep_table, sweep) = cadence_sweep(scale);
    sweep_table.print();
    if let Err(err) = sweep_check(&sweep) {
        eprintln!("error: {err}");
        std::process::exit(1);
    }
    println!(
        "cadence-sweep check: every cell recovered its full run exactly and replayed \
         exactly its uncheckpointed tail"
    );

    // Carry the existing trajectory forward, then append this run's entry.
    let old = std::fs::read_to_string(&out_path).unwrap_or_default();
    let mut trajectory = trajectory_inner(&old).unwrap_or_default();
    trajectory.push(trajectory_entry(&today(), &label, scale, &matrix, &sweep));

    let json = to_json(scale, &matrix, &sweep, &trajectory);
    if let Err(err) = schema_check(&json) {
        eprintln!("error: {err}");
        std::process::exit(1);
    }
    std::fs::write(&out_path, &json).expect("write BENCH_recovery.json");
    if let Some(ratio) = durable_ratio(&sweep) {
        println!(
            "headline: at the tightest checkpoint cadence, the best few-state algorithm \
             writes {ratio:.2}× fewer durable bytes per item than the worst baseline"
        );
    }
    println!("trajectory: {} entr(y/ies) recorded", trajectory.len());
    println!("wrote {out_path}");
}
