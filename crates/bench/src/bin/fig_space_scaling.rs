//! Regenerates experiment F2: space scaling of the F_p estimator.

fn main() {
    let scale = fsc_bench::Scale::from_args();
    let (_, space_table, series) = fsc_bench::experiments::scaling::run(scale);
    space_table.print();
    for s in series {
        println!(
            "p = {:.1}: fitted space slope {:.3} (theory {:.3})",
            s.p,
            s.space_slope,
            (1.0 - 2.0 / s.p).max(0.0)
        );
    }
}
