//! Regenerates experiment F3: accuracy of F_p estimation vs ε.

fn main() {
    let scale = fsc_bench::Scale::from_args();
    let (table, _) = fsc_bench::experiments::accuracy::run(scale);
    table.print();
}
