//! Regenerates experiment F8: entropy estimation across stream skews.

fn main() {
    let scale = fsc_bench::Scale::from_args();
    let (table, _) = fsc_bench::experiments::entropy::run(scale);
    table.print();
}
