//! The standalone load generator / control client for `fsc_serve`.
//!
//! ```text
//! cargo run -p fsc-bench --release --bin fsc_loadgen -- --addr 127.0.0.1:7070
//! ... fsc_loadgen -- --addr 127.0.0.1:7070 --connections 4 --batches 100 --batch-size 512
//! ... fsc_loadgen -- --addr 127.0.0.1:7070 --algorithm space_saving --shards 4
//! ... fsc_loadgen -- --addr 127.0.0.1:7070 --status     # durability/recovery report
//! ... fsc_loadgen -- --addr 127.0.0.1:7070 --shutdown   # graceful server stop
//! ```
//!
//! Each connection runs its own tenant (`lg-<i>`) and ingests sequence-numbered
//! batches with per-request timeouts, bounded retries, and jittered exponential
//! backoff; the report prints acknowledged-item throughput, p50/p99 ingest
//! latency, and the resilience counters (retries, reconnects, duplicate acks —
//! all zero against a healthy server).  With `--status` the client asks the
//! server for its durability mode and per-tenant recovery/journal counts, and
//! exits non-zero if any tenant failed recovery, discarded chain entries, or
//! truncated journal damage — a one-command health check after a restart.
//! With `--shutdown` the run (if any batches were requested) is followed by
//! the `Shutdown` control frame, which checkpoints every tenant and stops the
//! server.

use std::net::{SocketAddr, ToSocketAddrs};

use fsc_serve::{Client, ClientConfig, LoadGen};

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn parse<T: std::str::FromStr>(name: &str, default: T) -> T {
    flag_value(name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let addr = flag_value("--addr").unwrap_or_else(|| "127.0.0.1:7070".to_string());
    let addr: SocketAddr = match addr.to_socket_addrs().ok().and_then(|mut a| a.next()) {
        Some(resolved) => resolved,
        None => {
            eprintln!("error: cannot resolve {addr}");
            std::process::exit(1);
        }
    };
    let shutdown = flag("--shutdown");
    let batches = parse("--batches", if shutdown { 0 } else { 50 });

    if batches > 0 {
        let gen = LoadGen {
            connections: parse("--connections", 2),
            batches,
            batch_size: parse("--batch-size", 256),
            algorithm: flag_value("--algorithm").unwrap_or_else(|| "count_min".to_string()),
            shards: parse("--shards", 2),
            universe: parse("--universe", 1 << 12),
            seed: parse("--seed", 1),
            client: ClientConfig::default(),
        };
        println!(
            "load: {} connection(s) × {} batch(es) × {} item(s) of {:?} against {addr}",
            gen.connections, gen.batches, gen.batch_size, gen.algorithm
        );
        let report = gen.run(addr);
        println!(
            "done: {} items in {:.3} s = {:.0} items/s ({} applied + {} duplicate batches)",
            report.items,
            report.elapsed.as_secs_f64(),
            report.items_per_sec(),
            report.applied_batches,
            report.duplicate_batches
        );
        println!(
            "latency: p50 {} µs, p99 {} µs; resilience: {} retries, {} reconnects, \
             {} overloaded, {} duplicate acks",
            report.p50.as_micros(),
            report.p99.as_micros(),
            report.counters.retries,
            report.counters.reconnects,
            report.counters.overloaded,
            report.counters.duplicate_acks
        );
        for e in &report.errors {
            eprintln!("error: {e}");
        }
        if !report.errors.is_empty() {
            std::process::exit(1);
        }
    }

    if flag("--status") {
        let mut client = Client::new(addr, ClientConfig::default());
        let status = match client.status() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: status: {e}");
                std::process::exit(1);
            }
        };
        println!(
            "server: {}, group commit {}, {} tenant(s), {} failed recovery",
            status.durability,
            status.group_commit,
            status.tenants.len(),
            status.failed_tenants
        );
        let mut unhealthy = status.failed_tenants > 0;
        for t in &status.tenants {
            println!(
                "  {}: next_seq {}, {}{} chain deltas applied, {} discarded; journal: \
                 {} record(s) / {} B live, {} batch(es) replayed, {} B truncated",
                t.tenant,
                t.next_seq,
                if t.recovered { "recovered, " } else { "" },
                t.chain_applied,
                t.chain_discarded,
                t.wal_records,
                t.wal_bytes,
                t.wal_replayed,
                t.wal_truncated_bytes
            );
            unhealthy |= t.chain_discarded > 0 || t.wal_truncated_bytes > 0;
        }
        if unhealthy {
            eprintln!(
                "error: at least one tenant failed recovery, discarded chain entries, \
                 or truncated journal damage"
            );
            std::process::exit(1);
        }
    }

    if shutdown {
        let mut client = Client::new(addr, ClientConfig::default());
        match client.shutdown() {
            Ok(()) => println!("server checkpointed all tenants and stopped"),
            Err(e) => {
                eprintln!("error: shutdown: {e}");
                std::process::exit(1);
            }
        }
    }
}
