//! Regenerates experiment F11: sharded merged summaries vs serial runs.

fn main() {
    let scale = fsc_bench::Scale::from_args();
    let (table, rows) = fsc_bench::experiments::sharding::run(scale);
    table.print();
    for r in &rows {
        println!(
            "{}: {} shards, wall-clock speedup {:.2}x",
            r.name,
            fsc_bench::experiments::sharding::SHARDS,
            r.speedup()
        );
    }
}
