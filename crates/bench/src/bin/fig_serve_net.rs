//! F14 — the networked front-end under load and under fire; writes
//! `BENCH_serve_net.json`.
//!
//! ```text
//! cargo run -p fsc-bench --release --bin fig_serve_net             # full scale
//! cargo run -p fsc-bench --release --bin fig_serve_net -- --quick  # CI self-check
//! ... fig_serve_net -- --label "PR 8 serve front-end"              # trajectory label
//! ... fig_serve_net -- --out /tmp/serve_net.json                   # custom path
//! ```
//!
//! Two halves (see `experiments::serve_net`): a saturation sweep driving a real
//! `fsc-serve` server over TCP loopback across (connections × batch-size) cells,
//! and the five-class fault matrix — torn checkpoint write, corrupt chain tip,
//! crash mid-ingest, dropped connections, overload shedding — where every class
//! must end in recovery verified **exact** against a registry twin.  The binary
//! **fails** (non-zero exit) if any sweep cell loses or double-counts a batch,
//! if any drill fails to inject its fault, recovers with the wrong typed
//! outcome, or diverges from its twin, or if the emitted JSON fails its schema
//! check.
//!
//! Latency columns measured on a 1-CPU CI container reflect scheduling, not the
//! server; recorded full-scale numbers come from an unloaded host.  The
//! correctness checks are load-independent.
//!
//! The JSON carries a `trajectory` array like the other records: existing
//! entries are carried forward verbatim and this run's entry is appended.  Only
//! a full-scale run defaults to the committed repo-root `BENCH_serve_net.json`;
//! `--quick` defaults to a temp file so a smoke run cannot replace the recorded
//! results with reduced-scale numbers.

use fsc_bench::experiments::serve_net::{
    fault_matrix, matrix_check, run, schema_check, sweep_check, to_json, trajectory_entry,
};
use fsc_bench::experiments::throughput::trajectory_inner;
use fsc_bench::Scale;

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Today's date as `YYYY-MM-DD` (UTC), from the system clock — no external crate.
/// Uses the standard civil-from-days algorithm.
fn today() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

fn main() {
    let scale = Scale::from_args();
    let label = flag_value("--label").unwrap_or_else(|| "unlabelled recording".to_string());
    let out_path = flag_value("--out").unwrap_or_else(|| match scale {
        Scale::Full => format!("{}/../../BENCH_serve_net.json", env!("CARGO_MANIFEST_DIR")),
        Scale::Quick => std::env::temp_dir()
            .join("BENCH_serve_net.quick.json")
            .to_string_lossy()
            .into_owned(),
    });

    let (table, sweep) = run(scale);
    table.print();
    if let Err(err) = sweep_check(&sweep) {
        eprintln!("error: {err}");
        std::process::exit(1);
    }
    println!(
        "sweep check: every cell acknowledged every batch exactly once and every \
         tenant cursor verified"
    );

    let (matrix_table, matrix) = fault_matrix();
    matrix_table.print();
    for r in &matrix {
        println!("  {}: {}", r.fault, r.detail);
    }
    if let Err(err) = matrix_check(&matrix) {
        eprintln!("error: {err}");
        std::process::exit(1);
    }
    println!(
        "fault-matrix check: all {} failure classes injected, recovered as typed, \
         and matched their registry twins exactly",
        matrix.len()
    );

    // Carry the existing trajectory forward, then append this run's entry.
    let old = std::fs::read_to_string(&out_path).unwrap_or_default();
    let mut trajectory = trajectory_inner(&old).unwrap_or_default();
    trajectory.push(trajectory_entry(&today(), &label, scale, &sweep, &matrix));

    let json = to_json(scale, &sweep, &matrix, &trajectory);
    if let Err(err) = schema_check(&json) {
        eprintln!("error: {err}");
        std::process::exit(1);
    }
    std::fs::write(&out_path, &json).expect("write BENCH_serve_net.json");
    if let Some(peak) = sweep
        .iter()
        .max_by(|a, b| a.items_per_sec.total_cmp(&b.items_per_sec))
    {
        println!(
            "headline: peak ingest = {:.2} Mitems/s at {} connections × {} items/batch \
             (p99 {} µs)",
            peak.items_per_sec / 1e6,
            peak.connections,
            peak.batch_size,
            peak.p99_us
        );
    }
    println!("trajectory: {} entr(y/ies) recorded", trajectory.len());
    println!("wrote {out_path}");
}
