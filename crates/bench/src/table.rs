//! Minimal markdown table printing for experiment output.

/// A markdown table under construction.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as github-flavoured markdown.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = format!("\n### {}\n\n", self.title);
        let fmt_row = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:<width$}", width = widths[i]))
                .collect();
            format!("| {} |\n", padded.join(" | "))
        };
        out.push_str(&fmt_row(&self.headers));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("| {} |\n", sep.join(" | ")));
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats a float with three significant-looking decimals.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("demo", &["algo", "value"]);
        t.row(vec!["a".into(), f(1234.5)]);
        t.row(vec!["longer-name".into(), f(0.12345)]);
        let s = t.render();
        assert!(s.contains("### demo"));
        assert!(s.contains("| algo        | value  |"));
        assert!(s.contains("| longer-name | 0.1235 |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_is_rejected() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn float_formatting_covers_ranges() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(12345.6), "12346");
        assert_eq!(f(3.14222), "3.14");
        assert_eq!(f(0.0314222), "0.0314");
    }
}
