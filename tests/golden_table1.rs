//! Golden-snapshot regression test for the Table 1 oracle.
//!
//! `table1 --quick` is the bit-identity oracle every hot-path optimisation must
//! preserve (PR 2 and PR 3 were both verified against it).  This test pins the
//! rendered table byte-for-byte against `tests/golden/table1_quick.md`, so future perf
//! work cannot silently drift the recorded numbers: any change to hashing seeds, rng
//! consumption order, epoch accounting, or storage layout that alters a single cell
//! fails here with a readable diff.
//!
//! To re-bless after an *intentional* change (one that is supposed to alter recorded
//! results, e.g. a new default parameterisation), regenerate the file with
//! `cargo run -p fsc-bench --release --bin table1 -- --quick > tests/golden/table1_quick.md`
//! and say so in the PR description.

use fsc_bench::experiments::table1;
use fsc_bench::Scale;

const GOLDEN: &str = include_str!("golden/table1_quick.md");

#[test]
fn table1_quick_output_is_byte_identical_to_the_golden_snapshot() {
    let (table, rows) = table1::run(Scale::Quick);
    // The golden file is the captured stdout of the `table1 --quick` binary, which
    // prints `render()` through `println!` (one trailing newline added).
    let rendered = format!("{}\n", table.render());
    assert_eq!(rows.len(), 6, "Table 1 must keep all six rows");
    if rendered != GOLDEN {
        // assert_eq! on multi-kilobyte strings produces an unreadable blob; diff the
        // lines instead so the drifted cell is visible immediately.
        for (i, (got, want)) in rendered.lines().zip(GOLDEN.lines()).enumerate() {
            assert_eq!(got, want, "first drift on line {}", i + 1);
        }
        assert_eq!(
            rendered.lines().count(),
            GOLDEN.lines().count(),
            "line count drifted"
        );
        panic!("table1 --quick output drifted from tests/golden/table1_quick.md");
    }
}
