//! Property-based tests (proptest) for the core invariants of the substrate and the
//! algorithms, on arbitrary small streams.

use few_state_changes::algorithms::sparse_recovery::FewStateSparseRecovery;
use few_state_changes::algorithms::{Params, SampleAndHold};
use few_state_changes::counters::{Counter, ExactCounter, GeometricAccumulator, MorrisCounter};
use few_state_changes::state::{
    FrequencyEstimator, StateTracker, StreamAlgorithm, SupportRecovery, TrackedCell, TrackedMap,
};
use few_state_changes::streamgen::FrequencyVector;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The exact frequency vector always satisfies the basic moment relations:
    /// `F_1 = m`, `F_0 =` number of distinct items, `F_2 ≥ F_1²/F_0` (Cauchy-Schwarz),
    /// and `0 ≤ H ≤ log2(F_0)`.
    #[test]
    fn ground_truth_moment_relations(stream in proptest::collection::vec(0u64..64, 1..300)) {
        let f = FrequencyVector::from_stream(&stream);
        prop_assert_eq!(f.fp(1.0) as u64, stream.len() as u64);
        prop_assert_eq!(f.fp(0.0) as usize, f.distinct());
        let cs_lower = f.fp(1.0).powi(2) / f.distinct() as f64;
        prop_assert!(f.fp(2.0) + 1e-6 >= cs_lower);
        prop_assert!(f.entropy_bits() >= -1e-9);
        prop_assert!(f.entropy_bits() <= (f.distinct() as f64).log2() + 1e-9);
    }

    /// The state tracker never reports more state changes than epochs, and word writes
    /// always dominate state changes.
    #[test]
    fn tracker_counter_ordering(ops in proptest::collection::vec((0u8..3, 0u64..16), 1..200)) {
        let tracker = StateTracker::new();
        let mut map: TrackedMap<u64, u64> = TrackedMap::new(&tracker);
        let mut cell = TrackedCell::new(&tracker, 0u64);
        for (op, value) in ops {
            tracker.begin_epoch();
            match op {
                0 => { map.insert(value, value); }
                1 => { map.remove(&value); }
                _ => { cell.write(value); }
            }
        }
        let report = tracker.snapshot();
        prop_assert!(report.state_changes <= report.epochs);
        prop_assert!(report.word_writes + report.redundant_writes >= report.state_changes);
        prop_assert!(report.words_peak >= report.words_current);
    }

    /// Sparse recovery returns exactly the support of the stream whenever the sparsity
    /// promise holds, with one state change per distinct item.
    #[test]
    fn sparse_recovery_is_exact(stream in proptest::collection::vec(0u64..32, 1..400)) {
        let truth = FrequencyVector::from_stream(&stream);
        let mut alg = FewStateSparseRecovery::new(32);
        alg.process_stream(&stream);
        prop_assert!(!alg.overflowed());
        prop_assert_eq!(alg.recovered_support(), truth.support());
        prop_assert_eq!(alg.report().state_changes as usize, truth.distinct());
    }

    /// Morris counters and geometric accumulators are monotone and their registers
    /// (state changes) never exceed the number of increments.
    #[test]
    fn approximate_counters_are_monotone(increments in 1u64..2_000, seed in 0u64..1_000) {
        let tracker = StateTracker::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut morris = MorrisCounter::new(&tracker, 0.1);
        let mut acc = GeometricAccumulator::new(&tracker, 0.1);
        let mut exact = ExactCounter::new(&tracker);
        let mut last_morris = 0.0;
        let mut last_acc = 0.0;
        for _ in 0..increments {
            morris.increment(&mut rng);
            acc.add(1.0, &mut rng);
            exact.increment(&mut rng);
            prop_assert!(morris.estimate() >= last_morris);
            prop_assert!(acc.estimate() >= last_acc);
            last_morris = morris.estimate();
            last_acc = acc.estimate();
        }
        prop_assert_eq!(exact.count(), increments);
        prop_assert!(morris.register() <= increments);
        prop_assert!(acc.register() <= increments);
    }

    /// `SampleAndHold` never reports an item that did not occur, and its tracked-item
    /// estimates are positive.
    #[test]
    fn sample_and_hold_reports_only_real_items(
        stream in proptest::collection::vec(0u64..128, 10..400),
        seed in 0u64..100,
    ) {
        let truth = FrequencyVector::from_stream(&stream);
        let params = Params::new(2.0, 0.3, 128, stream.len()).with_seed(seed);
        let mut alg = SampleAndHold::standalone(&params);
        alg.process_stream(&stream);
        for item in alg.tracked_items() {
            prop_assert!(truth.frequency(item) > 0, "item {} never occurred", item);
            prop_assert!(alg.estimate(item) >= 1.0);
        }
        prop_assert!(alg.estimate(999_999) == 0.0);
    }
}
