//! Cross-crate integration tests: workload generators → the paper's algorithms →
//! scoring against exact ground truth, with the state-change accounting checked along
//! the way.

use few_state_changes::algorithms::{FewStateHeavyHitters, FpEstimator, Params, SampleAndHold};
use few_state_changes::baselines::{CountSketch, MisraGries};
use few_state_changes::state::{FrequencyEstimator, MomentEstimator, StreamAlgorithm};
use few_state_changes::streamgen::ground_truth::precision_recall;
use few_state_changes::streamgen::netflow::{flow_trace, FlowTraceSpec};
use few_state_changes::streamgen::zipf::zipf_stream;
use few_state_changes::streamgen::FrequencyVector;

#[test]
fn elephant_flows_are_found_with_fewer_writes_than_misra_gries() {
    let trace = flow_trace(&FlowTraceSpec {
        elephants: 8,
        mice: 10_000,
        elephant_min_packets: 1_500,
        seed: 3,
        ..FlowTraceSpec::default()
    });
    let truth = FrequencyVector::from_stream(&trace.packets);
    let eps = 0.02;
    let exact: Vec<u64> = truth
        .heavy_hitters(1.0, eps)
        .into_iter()
        .map(|(i, _)| i)
        .collect();
    assert!(exact.len() >= 8, "all elephants should be heavy");

    let mut ours = FewStateHeavyHitters::new(
        Params::new(1.0, eps, trace.flows, trace.packets.len()).with_seed(1),
    );
    ours.process_stream(&trace.packets);
    let reported: Vec<u64> = ours
        .heavy_hitters_with_norm(truth.lp(1.0))
        .into_iter()
        .map(|(i, _)| i)
        .collect();
    let (precision, recall) = precision_recall(&reported, &exact);
    assert!(recall >= 0.9, "recall {recall}");
    assert!(precision >= 0.8, "precision {precision}");

    let mut mg = MisraGries::for_epsilon(eps / 2.0);
    mg.process_stream(&trace.packets);
    assert!(
        ours.report().state_changes < mg.report().state_changes,
        "ours {} vs Misra-Gries {}",
        ours.report().state_changes,
        mg.report().state_changes
    );
}

#[test]
fn f2_estimate_agrees_with_ground_truth_and_the_count_sketch_threshold() {
    let n = 1 << 13;
    let m = 4 * n;
    let stream = zipf_stream(n, m, 1.3, 17);
    let truth = FrequencyVector::from_stream(&stream);

    let mut fp = FpEstimator::new(Params::new(2.0, 0.2, n, m).with_seed(5));
    fp.process_stream(&stream);
    let rel = (fp.estimate_moment() - truth.fp(2.0)).abs() / truth.fp(2.0);
    assert!(rel < 0.35, "relative error {rel}");

    // The estimated norm is good enough to drive a CountSketch-style threshold query.
    let norm = fp.estimate_moment().powf(0.5);
    let mut cs = CountSketch::for_error(0.05, 0.05, 3);
    cs.process_stream(&stream);
    let top = truth.mode().unwrap().0;
    assert!(
        cs.estimate(top) >= 0.2 * norm,
        "top item must clear an ε-fraction of the estimated norm"
    );
}

#[test]
fn state_change_accounting_is_consistent_across_the_stack() {
    let n = 1 << 12;
    let m = 4 * n;
    let stream = zipf_stream(n, m, 1.1, 23);
    let mut alg = SampleAndHold::standalone(&Params::new(2.0, 0.25, n, m).with_seed(2));
    alg.process_stream(&stream);
    let report = alg.report();
    // Structural invariants of the accounting substrate.
    assert_eq!(report.epochs as usize, m);
    assert!(report.state_changes <= report.epochs);
    assert!(report.word_writes >= report.state_changes);
    assert!(report.words_peak >= report.words_current);
    assert!(
        report.reads > 0,
        "membership checks must be charged as reads"
    );
}

#[test]
fn frequency_estimates_never_exceed_truth_by_more_than_the_morris_error() {
    let n = 1 << 12;
    let m = 4 * n;
    let stream = zipf_stream(n, m, 1.2, 31);
    let truth = FrequencyVector::from_stream(&stream);
    let mut alg = SampleAndHold::standalone(&Params::new(2.0, 0.25, n, m).with_seed(9));
    alg.process_stream(&stream);
    for item in alg.tracked_items() {
        let est = alg.estimate(item);
        let exact = truth.frequency(item) as f64;
        assert!(
            est <= 1.4 * exact + 2.0,
            "item {item}: estimate {est} vs exact {exact}"
        );
    }
}
