//! Laws of the networked front-end (`fsc-serve`).
//!
//! * **Wire totality** — every `Request`/`Response` frame type round-trips
//!   through its codec, and every truncation of every frame decodes to a typed
//!   error: no panic, no partial parse, no unbounded allocation.  Garbage and
//!   oversized frames sent to a *live* server get typed refusals and never take
//!   the server down.
//! * **The recovery law** — kill a server mid-ingest and restart it over the
//!   same data dir: the delta chain restores the checkpointed prefix, the
//!   write-ahead journal replays the acked suffix, and the restart answers
//!   exactly like a twin that saw every acked batch — with duplicate re-sends
//!   refused, no client-side replay needed.
//! * **Idempotency** — re-sending an applied batch acks without re-applying.
//! * **Graceful degradation** — excess ingest is shed with typed `Overloaded`
//!   while readers keep answering off the cached view, and a corrupt tenant
//!   fails alone: its neighbors recover and serve.

use std::io::Write as _;
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use fsc_bench::registry::serve_factory;
use fsc_engine::EngineConfig;
use fsc_serve::faults::splitmix64;
use fsc_serve::protocol::{read_frame, write_frame, Request, Response, ServeError, MAX_FRAME};
use fsc_serve::storage::TenantOutcome;
use fsc_serve::{Client, ClientConfig, FaultPlan, Server, ServerConfig, ServerHandle};
use fsc_state::{Answer, Query};
use proptest::prelude::*;

// --- helpers ------------------------------------------------------------------

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fsc-serve-net-laws-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(dir: &PathBuf, faults: FaultPlan, max_inflight: usize) -> ServerHandle {
    let config = ServerConfig::new(dir)
        .with_faults(faults)
        .with_max_inflight_ingest(max_inflight);
    Server::start("127.0.0.1:0", config, serve_factory())
        .expect("bind")
        .0
}

fn restart(dir: &PathBuf) -> (ServerHandle, fsc_serve::RecoveryReport) {
    Server::start("127.0.0.1:0", ServerConfig::new(dir), serve_factory()).expect("bind")
}

fn client(server: &ServerHandle) -> Client {
    Client::new(server.addr(), ClientConfig::default())
}

// --- seeded frame generators (the proptest shim drives the seeds) -------------

fn arb_name(rng: &mut u64) -> String {
    let len = 1 + (splitmix64(rng) % 12) as usize;
    (0..len)
        .map(|_| {
            let alphabet = b"abcdefghijklmnopqrstuvwxyz0123456789-_";
            alphabet[(splitmix64(rng) as usize) % alphabet.len()] as char
        })
        .collect()
}

fn arb_items(rng: &mut u64) -> Vec<u64> {
    let len = (splitmix64(rng) % 20) as usize;
    (0..len).map(|_| splitmix64(rng)).collect()
}

fn arb_query(rng: &mut u64) -> Query {
    match splitmix64(rng) % 6 {
        0 => Query::Point(splitmix64(rng)),
        1 => Query::HeavyHitters {
            threshold: (splitmix64(rng) % 1_000) as f64 / 8.0,
        },
        2 => Query::TrackedItems,
        3 => Query::Moment,
        4 => Query::Entropy,
        _ => Query::Support,
    }
}

fn arb_answer(rng: &mut u64) -> Answer {
    match splitmix64(rng) % 4 {
        0 => Answer::Scalar((splitmix64(rng) % 100_000) as f64 / 16.0),
        1 => Answer::ItemWeights(
            (0..splitmix64(rng) % 8)
                .map(|_| (splitmix64(rng), (splitmix64(rng) % 4_096) as f64))
                .collect(),
        ),
        2 => Answer::Items(arb_items(rng)),
        _ => Answer::Unsupported,
    }
}

fn arb_error(rng: &mut u64) -> ServeError {
    match splitmix64(rng) % 8 {
        0 => ServeError::UnknownTenant(arb_name(rng)),
        1 => ServeError::TenantExists(arb_name(rng)),
        2 => ServeError::UnknownAlgorithm(arb_name(rng)),
        3 => ServeError::Overloaded,
        4 => ServeError::SeqGap {
            expected: splitmix64(rng),
            found: splitmix64(rng),
        },
        5 => ServeError::Protocol(arb_name(rng)),
        6 => ServeError::ShuttingDown,
        _ => ServeError::Internal(arb_name(rng)),
    }
}

fn arb_request(rng: &mut u64) -> Request {
    match splitmix64(rng) % 8 {
        0 => Request::CreateTenant {
            tenant: arb_name(rng),
            algorithm: arb_name(rng),
            shards: (splitmix64(rng) % 8) as u32,
        },
        1 => Request::Ingest {
            tenant: arb_name(rng),
            seq: splitmix64(rng),
            items: arb_items(rng),
        },
        2 => Request::Query {
            tenant: arb_name(rng),
            query: arb_query(rng),
        },
        3 => Request::Checkpoint {
            tenant: arb_name(rng),
        },
        4 => Request::Stats {
            tenant: arb_name(rng),
        },
        5 => Request::Shutdown,
        6 => Request::Crash,
        _ => Request::Status,
    }
}

fn arb_tenant_status(rng: &mut u64) -> fsc_serve::TenantStatus {
    fsc_serve::TenantStatus {
        tenant: arb_name(rng),
        recovered: splitmix64(rng).is_multiple_of(2),
        next_seq: splitmix64(rng),
        chain_applied: splitmix64(rng),
        chain_discarded: splitmix64(rng),
        wal_replayed: splitmix64(rng),
        wal_truncated_bytes: splitmix64(rng),
        wal_records: splitmix64(rng),
        wal_bytes: splitmix64(rng),
        wal_appended_bytes: splitmix64(rng),
    }
}

fn arb_response(rng: &mut u64) -> Response {
    match splitmix64(rng) % 6 {
        0 => Response::Ok,
        1 => Response::Answer(arb_answer(rng)),
        2 => Response::IngestAck {
            seq: splitmix64(rng),
            applied: splitmix64(rng).is_multiple_of(2),
        },
        3 => Response::Stats(fsc_serve::TenantStats {
            ingested: splitmix64(rng),
            next_seq: splitmix64(rng),
            rebuilds: splitmix64(rng),
            chain_len: splitmix64(rng),
        }),
        4 => Response::Status(fsc_serve::ServerStatus {
            durability: if splitmix64(rng).is_multiple_of(2) {
                fsc_serve::Durability::AckAfterApply
            } else {
                fsc_serve::Durability::AckAfterDurable
            },
            group_commit: splitmix64(rng),
            failed_tenants: splitmix64(rng),
            tenants: (0..splitmix64(rng) % 4)
                .map(|_| arb_tenant_status(rng))
                .collect(),
        }),
        _ => Response::Error(arb_error(rng)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every request frame round-trips, and every strict prefix of its encoding
    /// decodes to a typed error (total parsing: no panic, no partial accept).
    #[test]
    fn request_frames_round_trip_and_reject_every_truncation(seed in 0u64..100_000) {
        let mut rng = seed;
        let request = arb_request(&mut rng);
        let bytes = request.encode();
        prop_assert_eq!(Request::decode(&bytes).expect("round trip"), request);
        for cut in 0..bytes.len() {
            prop_assert!(Request::decode(&bytes[..cut]).is_err(), "cut {} parsed", cut);
        }
    }

    /// Same law for every response frame type.
    #[test]
    fn response_frames_round_trip_and_reject_every_truncation(seed in 0u64..100_000) {
        let mut rng = seed ^ 0xFEED;
        let response = arb_response(&mut rng);
        let bytes = response.encode();
        prop_assert_eq!(Response::decode(&bytes).expect("round trip"), response);
        for cut in 0..bytes.len() {
            prop_assert!(Response::decode(&bytes[..cut]).is_err(), "cut {} parsed", cut);
        }
    }

    /// Garbage bytes never panic the decoders and never decode by accident
    /// (the FSCS magic + id check in the header gates everything).
    #[test]
    fn garbage_payloads_land_in_typed_errors(
        seed in 0u64..100_000,
        len in 0usize..256,
    ) {
        let mut rng = seed ^ 0x6A5B;
        let garbage: Vec<u8> = (0..len).map(|_| splitmix64(&mut rng) as u8).collect();
        prop_assert!(Request::decode(&garbage).is_err());
        prop_assert!(Response::decode(&garbage).is_err());
    }
}

// --- live-server fuzz: hostile frames against a serving socket ----------------

#[test]
fn an_oversized_frame_announcement_is_refused_typed_and_the_server_survives() {
    let dir = tmp_dir("oversized");
    let server = start(&dir, FaultPlan::none(), 64);

    // Announce a frame just past the cap; send no payload.  The server must
    // refuse *before* allocating the announced size.
    let mut raw = TcpStream::connect(server.addr()).expect("connect");
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    raw.write_all(&((MAX_FRAME as u32) + 1).to_le_bytes())
        .expect("write length prefix");
    let payload = read_frame(&mut raw)
        .expect("typed refusal frame")
        .expect("response before close");
    match Response::decode(&payload).expect("refusal decodes") {
        Response::Error(ServeError::Protocol(msg)) => {
            assert!(msg.contains("bytes"), "refusal names the size: {msg}")
        }
        other => panic!("expected a protocol refusal, got {other:?}"),
    }

    // The listener is unaffected: a fresh client gets full service.
    let mut c = client(&server);
    c.create_tenant("after", "count_min", 1).expect("create");
    assert!(c.ingest("after", 0, &[3, 3]).expect("ingest"));
    assert_eq!(
        c.query("after", Query::Point(3)).expect("query"),
        Answer::Scalar(2.0)
    );
    server.stop().expect("stop");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn garbage_and_truncated_frames_get_typed_errors_without_killing_the_connection() {
    let dir = tmp_dir("garbage");
    let server = start(&dir, FaultPlan::none(), 64);

    // A well-framed garbage payload: typed error, connection stays usable.
    let mut raw = TcpStream::connect(server.addr()).expect("connect");
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write_frame(&mut raw, b"definitely not an FSCS record").expect("send garbage");
    let payload = read_frame(&mut raw).expect("frame").expect("response");
    assert!(
        matches!(
            Response::decode(&payload).expect("decodes"),
            Response::Error(ServeError::Protocol(_))
        ),
        "garbage must get a typed protocol error"
    );
    // Same connection, now a valid request: the server re-synchronized.
    write_frame(&mut raw, &Request::Shutdown.encode()).expect("still framed");
    let payload = read_frame(&mut raw).expect("frame").expect("response");
    assert_eq!(Response::decode(&payload).expect("decodes"), Response::Ok);
    server.join();

    // A frame torn mid-payload (peer dies): the server drops the connection and
    // keeps serving others.
    let dir = tmp_dir("torn-frame");
    let server = start(&dir, FaultPlan::none(), 64);
    {
        let mut raw = TcpStream::connect(server.addr()).expect("connect");
        raw.write_all(&100u32.to_le_bytes()).expect("announce 100");
        raw.write_all(&[0xAB; 10]).expect("send only 10");
        // Drop: half-closed mid-frame.
    }
    let mut c = client(&server);
    c.create_tenant("still-up", "count_min", 1).expect("create");
    assert!(c.ingest("still-up", 0, &[9]).expect("ingest"));
    server.stop().expect("stop");
    let _ = std::fs::remove_dir_all(&dir);
}

// --- the recovery law ---------------------------------------------------------

/// Kill mid-ingest, restart, and the server answers exactly like a twin that
/// saw every acked batch: the chain restores the checkpointed prefix and the
/// write-ahead journal replays the acked suffix — no client-side replay, and
/// duplicate re-sends are refused.
#[test]
fn a_restart_after_crash_answers_like_the_truncated_twin_and_replay_converges() {
    let dir = tmp_dir("recovery-law");
    let batches: Vec<Vec<u64>> = {
        let mut rng = 0xC4A5u64;
        (0..5)
            .map(|_| (0..64).map(|_| splitmix64(&mut rng) % 512).collect())
            .collect()
    };
    let probes: Vec<Query> = (0..16).map(Query::Point).chain([Query::Moment]).collect();
    let twin = |upto: usize| -> Vec<Answer> {
        let factory = serve_factory();
        let mut engine = factory(
            "count_min",
            EngineConfig {
                shards: 2,
                ..EngineConfig::default()
            },
        )
        .expect("count_min is engine-capable");
        for batch in &batches[..upto] {
            engine.ingest(batch);
        }
        probes
            .iter()
            .map(|q| engine.query_fresh(q).expect("twin answers"))
            .collect()
    };

    let server = start(&dir, FaultPlan::seeded(1).with_crash_frame(), 64);
    let mut c = client(&server);
    c.create_tenant("t0", "count_min", 2).expect("create");
    for seq in 0..3u64 {
        assert!(c.ingest("t0", seq, &batches[seq as usize]).expect("ingest"));
    }
    c.checkpoint("t0").expect("checkpoint at seq 3");
    for seq in 3..5u64 {
        assert!(c.ingest("t0", seq, &batches[seq as usize]).expect("ingest"));
    }
    c.crash(); // batches 3..5 were acked but never checkpointed: journal only
    server.join();

    let (server, report) = restart(&dir);
    assert_eq!(report.recovered(), 1, "t0 comes back: {report}");
    assert!(
        report.is_clean(),
        "a crash damages nothing on disk: {report}"
    );
    assert_eq!(
        report.total_wal_replayed(),
        2,
        "the journal holds the acked suffix: {report}"
    );

    let mut c = client(&server);
    let served: Vec<Answer> = probes
        .iter()
        .map(|q| c.query("t0", *q).expect("query"))
        .collect();
    assert_eq!(
        served,
        twin(5),
        "restart must answer as the full 5-batch twin: chain prefix + journal suffix"
    );

    // The cursor covers the replayed batches; re-sends of acked seqs are
    // refused — the client has nothing to replay.
    assert_eq!(c.stats("t0").expect("stats").next_seq, 5);
    for seq in 2..5u64 {
        assert!(
            !c.ingest("t0", seq, &batches[seq as usize])
                .expect("duplicate resend"),
            "acked batch {seq} must not re-apply after recovery"
        );
    }
    let served: Vec<Answer> = probes
        .iter()
        .map(|q| c.query("t0", *q).expect("query"))
        .collect();
    assert_eq!(
        served,
        twin(5),
        "duplicate re-sends must not change answers"
    );

    // The Status frame reports the same recovery the report did.
    let status = c.status().expect("status");
    assert_eq!(status.failed_tenants, 0);
    assert_eq!(status.tenants.len(), 1);
    let t0 = &status.tenants[0];
    assert!(t0.recovered);
    assert_eq!(t0.next_seq, 5);
    assert_eq!(t0.wal_replayed, 2);
    assert_eq!(t0.wal_truncated_bytes, 0);
    server.stop().expect("stop");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn retried_ingest_never_double_counts() {
    let dir = tmp_dir("idempotent");
    let server = start(&dir, FaultPlan::none(), 64);
    let mut c = client(&server);
    c.create_tenant("t0", "count_min", 1).expect("create");
    assert!(c.ingest("t0", 0, &[5; 10]).expect("first delivery"));
    // The retry (response lost, say): acked, not re-applied.
    assert!(!c.ingest("t0", 0, &[5; 10]).expect("retry"));
    assert_eq!(c.counters.duplicate_acks, 1);
    let stats = c.stats("t0").expect("stats");
    assert_eq!(stats.ingested, 10, "ten items, not twenty");
    assert_eq!(stats.next_seq, 1);
    assert_eq!(
        c.query("t0", Query::Point(5)).expect("query"),
        Answer::Scalar(10.0)
    );
    // A gap is refused typed, not silently reordered.
    match c.request(&Request::Ingest {
        tenant: "t0".into(),
        seq: 7,
        items: vec![1],
    }) {
        Ok(Response::Error(ServeError::SeqGap { expected, found })) => {
            assert_eq!((expected, found), (1, 7));
        }
        other => panic!("expected a typed SeqGap, got {other:?}"),
    }
    server.stop().expect("stop");
    let _ = std::fs::remove_dir_all(&dir);
}

// --- graceful degradation -----------------------------------------------------

#[test]
fn overload_is_shed_typed_while_readers_stay_live() {
    let dir = tmp_dir("overload");
    let stall = Duration::from_millis(300);
    let server = start(&dir, FaultPlan::seeded(9).with_stall_ingest(stall), 1);
    let addr = server.addr();
    let mut c = client(&server);
    c.create_tenant("ta", "count_min", 1).expect("create ta");
    c.create_tenant("tb", "count_min", 1).expect("create tb");
    assert!(c.ingest("ta", 0, &[4, 4, 4]).expect("seed ta"));

    std::thread::scope(|scope| {
        // Writer A occupies the single admission slot (stalled under the lock).
        let slow = scope.spawn(move || {
            let mut c = Client::new(addr, ClientConfig::default());
            c.ingest("ta", 1, &[1, 2, 3]).expect("admitted ingest")
        });
        std::thread::sleep(stall / 4);

        // Writer B, no retries: must be shed with the typed Overloaded.
        let mut b = Client::new(addr, ClientConfig::default());
        let shed = b
            .request_once(&Request::Ingest {
                tenant: "tb".into(),
                seq: 0,
                items: vec![7],
            })
            .expect("request completes");
        assert_eq!(
            shed,
            Response::Error(ServeError::Overloaded),
            "excess ingest is shed typed, not queued"
        );

        // A reader during the stall: served off the cached view, no admission
        // gate, answers promptly.
        let started = std::time::Instant::now();
        assert_eq!(
            b.query("ta", Query::Point(4)).expect("read during stall"),
            Answer::Scalar(3.0)
        );
        assert!(
            started.elapsed() < stall,
            "reads must not queue behind the stalled ingest path"
        );
        assert!(
            slow.join().expect("writer thread"),
            "admitted batch applies"
        );
    });

    // Once the stall clears, the shed writer's retry path gets through.
    let mut b = Client::new(addr, ClientConfig::default());
    assert!(b.ingest("tb", 0, &[7]).expect("retry after shed"));
    server.stop().expect("stop");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_corrupt_tenant_fails_alone_and_its_neighbors_recover() {
    let dir = tmp_dir("isolation");
    let server = start(&dir, FaultPlan::none(), 64);
    let mut c = client(&server);
    for tenant in ["t-good", "t-bad"] {
        c.create_tenant(tenant, "count_min", 1).expect("create");
        assert!(c.ingest(tenant, 0, &[11, 11]).expect("ingest"));
        c.checkpoint(tenant).expect("checkpoint");
    }
    server.stop().expect("stop");

    // Truncate t-bad's base checkpoint inside the header: unrecoverable.
    let base = dir.join("t-bad").join("base.fscs");
    let bytes = std::fs::read(&base).expect("read base");
    std::fs::write(&base, &bytes[..4]).expect("truncate base");

    let (server, report) = restart(&dir);
    assert_eq!(report.recovered(), 1, "{report}");
    assert_eq!(report.failed(), 1, "{report}");
    let bad = report
        .tenants
        .iter()
        .find(|t| t.tenant == "t-bad")
        .expect("t-bad reported");
    assert!(
        matches!(&bad.outcome, TenantOutcome::Failed { error } if error.contains("base")),
        "typed failure names the damaged artifact: {:?}",
        bad.outcome
    );

    // The survivor serves; the failed tenant is absent, typed.
    let mut c = client(&server);
    assert_eq!(
        c.query("t-good", Query::Point(11))
            .expect("survivor serves"),
        Answer::Scalar(2.0)
    );
    match c.query("t-bad", Query::Point(11)) {
        Err(fsc_serve::ClientError::Server(ServeError::UnknownTenant(name))) => {
            assert_eq!(name, "t-bad")
        }
        other => panic!("expected UnknownTenant for the failed tenant, got {other:?}"),
    }
    server.stop().expect("stop");
    let _ = std::fs::remove_dir_all(&dir);
}
