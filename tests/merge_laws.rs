//! Merge laws for the sharded-execution summaries (`Mergeable`): merging per-shard
//! summaries must answer like (sketches) or within the documented bounds of
//! (counter summaries) a single unsharded run — plus the static `Send + Sync`
//! guarantees the sharded driver relies on.

use few_state_changes::baselines::{
    AmsSketch, CountMin, CountSketch, ExactCounting, MisraGries, SpaceSaving,
};
use few_state_changes::state::{
    FrequencyEstimator, Mergeable, MomentEstimator, StateTracker, StreamAlgorithm,
};
use few_state_changes::streamgen::FrequencyVector;

use proptest::prelude::*;

/// Splits `stream` at `at` (clamped), yielding the two shard substreams.
fn split(stream: &[u64], at: usize) -> (&[u64], &[u64]) {
    stream.split_at(at.min(stream.len()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CountMin is a linear sketch: a merged pair of shards answers *exactly* like the
    /// unsharded sketch, for every item, at every split point.
    #[test]
    fn count_min_merge_is_exact(
        stream in proptest::collection::vec(0u64..256, 1..600),
        at in 0usize..600,
    ) {
        let (left, right) = split(&stream, at);
        let mut whole = CountMin::new(64, 3, 11);
        whole.process_stream(&stream);
        let mut a = CountMin::new(64, 3, 11);
        a.process_stream(left);
        let mut b = CountMin::new(64, 3, 11);
        b.process_stream(right);
        a.merge_from(&b);
        for item in 0u64..64 {
            prop_assert_eq!(a.estimate(item), whole.estimate(item));
        }
    }

    /// CountSketch merges exactly (signed linearity).
    #[test]
    fn count_sketch_merge_is_exact(
        stream in proptest::collection::vec(0u64..256, 1..600),
        at in 0usize..600,
    ) {
        let (left, right) = split(&stream, at);
        let mut whole = CountSketch::new(64, 3, 13);
        whole.process_stream(&stream);
        let mut a = CountSketch::new(64, 3, 13);
        a.process_stream(left);
        let mut b = CountSketch::new(64, 3, 13);
        b.process_stream(right);
        a.merge_from(&b);
        for item in 0u64..64 {
            prop_assert_eq!(a.estimate(item), whole.estimate(item));
        }
    }

    /// The AMS tug-of-war sketch merges exactly: the merged moment estimate equals the
    /// unsharded one bit-for-bit.
    #[test]
    fn ams_merge_is_exact(
        stream in proptest::collection::vec(0u64..256, 1..600),
        at in 0usize..600,
    ) {
        let (left, right) = split(&stream, at);
        let mut whole = AmsSketch::new(3, 32, 17);
        whole.process_stream(&stream);
        let mut a = AmsSketch::new(3, 32, 17);
        a.process_stream(left);
        let mut b = AmsSketch::new(3, 32, 17);
        b.process_stream(right);
        a.merge_from(&b);
        prop_assert_eq!(
            a.estimate_moment().to_bits(),
            whole.estimate_moment().to_bits()
        );
    }

    /// Merged Misra-Gries keeps the law `f_i − m/(k+1) ≤ estimate(i) ≤ f_i` against the
    /// exact frequencies of the whole stream.
    #[test]
    fn misra_gries_merge_bounds_the_unsharded_frequencies(
        stream in proptest::collection::vec(0u64..64, 1..600),
        at in 0usize..600,
    ) {
        let k = 8;
        let (left, right) = split(&stream, at);
        let truth = FrequencyVector::from_stream(&stream);
        let mut a = MisraGries::new(k);
        a.process_stream(left);
        let mut b = MisraGries::new(k);
        b.process_stream(right);
        a.merge_from(&b);
        prop_assert!(a.tracked_items().len() <= k);
        let slack = stream.len() as f64 / (k + 1) as f64;
        for (item, f) in truth.iter() {
            let est = a.estimate(item);
            prop_assert!(est <= f as f64 + 1e-9, "item {} overestimated: {est} > {f}", item);
            prop_assert!(
                est >= f as f64 - slack - 1e-9,
                "item {}: est {est}, true {f}, slack {slack}", item
            );
        }
    }

    /// Merged SpaceSaving never underestimates a surviving item and stays within the
    /// combined `m/k` bound.
    #[test]
    fn space_saving_merge_bounds_surviving_items(
        stream in proptest::collection::vec(0u64..64, 1..600),
        at in 0usize..600,
    ) {
        let k = 8;
        let (left, right) = split(&stream, at);
        let truth = FrequencyVector::from_stream(&stream);
        let mut a = SpaceSaving::new(k);
        a.process_stream(left);
        let mut b = SpaceSaving::new(k);
        b.process_stream(right);
        a.merge_from(&b);
        prop_assert!(a.tracked_items().len() <= k);
        let slack = stream.len() as f64 / k as f64;
        for item in a.tracked_items() {
            let est = a.estimate(item);
            let f = truth.frequency(item) as f64;
            prop_assert!(est + 1e-9 >= f, "item {} underestimated: {est} < {f}", item);
            prop_assert!(est <= f + slack + 1e-9, "item {}: est {est}, true {f}, slack {slack}", item);
        }
    }

    /// Exact structures merge exactly: frequency vectors and exact counters of shards
    /// reproduce the unsharded answers.
    #[test]
    fn exact_structures_merge_exactly(
        stream in proptest::collection::vec(0u64..64, 1..400),
        at in 0usize..400,
    ) {
        let (left, right) = split(&stream, at);
        let whole = FrequencyVector::from_stream(&stream);
        let mut merged = FrequencyVector::from_stream(left);
        merged.merge_from(&FrequencyVector::from_stream(right));
        prop_assert_eq!(merged.stream_len(), whole.stream_len());
        prop_assert_eq!(merged.support(), whole.support());
        prop_assert_eq!(merged.fp(2.0).to_bits(), whole.fp(2.0).to_bits());

        let mut ea = ExactCounting::new(2.0);
        ea.process_stream(left);
        let mut eb = ExactCounting::new(2.0);
        eb.process_stream(right);
        ea.merge_from(&eb);
        prop_assert_eq!(ea.stream_len(), stream.len() as u64);
        for (item, f) in whole.iter() {
            prop_assert_eq!(ea.estimate(item), f as f64);
        }
    }
}

/// The sharded driver moves per-shard summaries across scoped threads, so every
/// summary — and the tracker substrate itself — must be `Send + Sync` regardless of
/// the backend it was constructed with (the lean backend is the one sharded runs use).
#[test]
fn lean_backend_algorithms_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<StateTracker>();
    assert_send_sync::<few_state_changes::state::TrackedCell<u64>>();
    assert_send_sync::<few_state_changes::state::TrackedVec<u64>>();
    assert_send_sync::<few_state_changes::state::TrackedMap<u64, u64>>();
    assert_send_sync::<CountMin>();
    assert_send_sync::<CountSketch>();
    assert_send_sync::<AmsSketch>();
    assert_send_sync::<MisraGries>();
    assert_send_sync::<SpaceSaving>();
    assert_send_sync::<ExactCounting>();
    assert_send_sync::<few_state_changes::algorithms::SampleAndHold>();
    assert_send_sync::<few_state_changes::algorithms::FpEstimator>();
    assert_send_sync::<few_state_changes::algorithms::FewStateHeavyHitters>();

    // And a lean-backed summary actually crosses a thread boundary.
    let tracker = StateTracker::lean();
    let mut cm = CountMin::with_tracker(&tracker, 32, 2, 1);
    let handle = std::thread::spawn(move || {
        cm.process_stream(&[1, 2, 3, 1]);
        cm.estimate(1)
    });
    assert!(handle.join().unwrap() >= 2.0);
}
