//! Batch laws: the specialized `process_batch` kernels (and the run-length
//! `process_run` kernels) must be **observably identical** to driving the same
//! algorithm with per-item `update` calls — same answers, same [`StateReport`]
//! (epochs, state changes, word writes, redundant writes, reads, space), and same
//! per-address wear tables — for every batch split and every seed.
//!
//! Every production `StreamAlgorithm` implementation in the workspace is covered
//! (the only other impl, the bench-only `LegacyRowsCountMin` reference in
//! `fsc-bench`, uses the default batch path by construction).  Algorithms whose
//! constructors accept a tracker run under `StateTracker::with_address_tracking`,
//! so the comparison pins the full wear table, not just aggregate counters.

use few_state_changes::algorithms::sparse_recovery::FewStateSparseRecovery;
use few_state_changes::algorithms::{
    EntropyFewState, FewStateHeavyHitters, FpEstimator, FpSmallEstimator, FullSampleAndHold,
    Params, SampleAndHold,
};
use few_state_changes::baselines::{
    AmsSketch, CountMin, CountSketch, ExactCounting, MisraGries, PickAndDrop, SampleAndHoldClassic,
    SpaceSaving,
};
use few_state_changes::state::{
    EntropyEstimator, FrequencyEstimator, MomentEstimator, StateTracker, StreamAlgorithm,
    SupportRecovery, TrackerKind,
};
use few_state_changes::streamgen::{run_length_encode, zipf::zipf_stream};

use proptest::prelude::*;

/// Drives one instance per item and a twin in batches cut at `cuts` (empty batches
/// included), then asserts report, wear-table, and answer-digest equality.
fn check_batch_law<A: StreamAlgorithm>(
    make: impl Fn(&StateTracker) -> A,
    digest: impl Fn(&A) -> Vec<u64>,
    stream: &[u64],
    cuts: &[usize],
) {
    let t_item = StateTracker::with_address_tracking();
    let mut per_item = make(&t_item);
    for &x in stream {
        per_item.update(x);
    }

    let t_batch = StateTracker::with_address_tracking();
    let mut batched = make(&t_batch);
    let mut sorted: Vec<usize> = cuts.iter().map(|&c| c.min(stream.len())).collect();
    sorted.sort_unstable();
    let mut prev = 0usize;
    for &c in &sorted {
        batched.process_batch(&stream[prev..c.max(prev)]);
        prev = prev.max(c);
    }
    batched.process_batch(&stream[prev..]);

    let name = per_item.name().to_string();
    assert_eq!(
        batched.report(),
        per_item.report(),
        "{name}: batched report diverged"
    );
    assert_eq!(
        batched.tracker().address_writes(),
        per_item.tracker().address_writes(),
        "{name}: batched wear table diverged"
    );
    assert_eq!(
        digest(&batched),
        digest(&per_item),
        "{name}: batched answers diverged"
    );
}

/// Per-item `update` vs run-length `process_runs` over the same stream.
fn check_run_law<A: StreamAlgorithm>(
    make: impl Fn(&StateTracker) -> A,
    digest: impl Fn(&A) -> Vec<u64>,
    stream: &[u64],
) {
    let t_item = StateTracker::with_address_tracking();
    let mut per_item = make(&t_item);
    for &x in stream {
        per_item.update(x);
    }
    let t_runs = StateTracker::with_address_tracking();
    let mut run_based = make(&t_runs);
    run_based.process_runs(&run_length_encode(stream));

    let name = per_item.name().to_string();
    assert_eq!(
        run_based.report(),
        per_item.report(),
        "{name}: run-length report diverged"
    );
    assert_eq!(
        run_based.tracker().address_writes(),
        per_item.tracker().address_writes(),
        "{name}: run-length wear table diverged"
    );
    assert_eq!(
        digest(&run_based),
        digest(&per_item),
        "{name}: run-length answers diverged"
    );
}

fn frequency_digest<A: FrequencyEstimator>(alg: &A) -> Vec<u64> {
    let mut items = alg.tracked_items();
    items.sort_unstable();
    let mut out = items.clone();
    out.extend(items.iter().map(|&i| alg.estimate(i).to_bits()));
    out.extend((0u64..64).map(|i| alg.estimate(i).to_bits()));
    out
}

/// Expands a stream into a bursty one (runs of length 1..=4 per item) so the
/// run-length kernels exercise both their bulk and their fallback paths.
fn burstify(stream: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(stream.len() * 2);
    for (i, &x) in stream.iter().enumerate() {
        for _ in 0..1 + (x as usize + i) % 4 {
            out.push(x);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Baseline sketches and summaries: batch kernels (specialized for AMS,
    /// CountMin, CountSketch; default path for the others) ≡ per-item updates.
    #[test]
    fn baseline_kernels_obey_the_batch_law(
        seed in 0u64..1_000,
        len in 1usize..400,
        cuts in proptest::collection::vec(0usize..400, 0..5),
    ) {
        let stream = zipf_stream(256, len, 1.1, seed);

        check_batch_law(
            |t| AmsSketch::with_tracker(t, 3, 16, seed),
            |a| vec![a.estimate_moment().to_bits()],
            &stream,
            &cuts,
        );
        check_batch_law(
            |t| CountMin::with_tracker(t, 64, 4, seed),
            frequency_digest,
            &stream,
            &cuts,
        );
        check_batch_law(
            |t| CountSketch::with_tracker(t, 64, 3, seed),
            frequency_digest,
            &stream,
            &cuts,
        );
        check_batch_law(
            |t| MisraGries::with_tracker(t, 8),
            frequency_digest,
            &stream,
            &cuts,
        );
        check_batch_law(
            |t| SpaceSaving::with_tracker(t, 8),
            frequency_digest,
            &stream,
            &cuts,
        );
        check_batch_law(
            |t| ExactCounting::with_tracker(t, 2.0),
            |a| {
                let mut d = frequency_digest(a);
                d.push(a.estimate_moment().to_bits());
                d.push(a.estimate_entropy().to_bits());
                d
            },
            &stream,
            &cuts,
        );
        check_batch_law(
            |_| SampleAndHoldClassic::new(0.08, seed),
            frequency_digest,
            &stream,
            &cuts,
        );
        check_batch_law(
            |_| PickAndDrop::new(16, 3, seed),
            |a| a.candidates().into_iter().flat_map(|(i, c)| [i, c]).collect(),
            &stream,
            &cuts,
        );
        check_batch_law(
            |t| FewStateSparseRecovery::with_tracker(48, t),
            |a| {
                let mut d = a.recovered_support();
                d.push(a.overflowed() as u64);
                d
            },
            &stream,
            &cuts,
        );
    }

    /// The paper's algorithms: the read-accumulating, level-precomputing batch
    /// kernels ≡ per-item updates (answers, reports, wear, and the shared-rng
    /// sequences they must not perturb).
    #[test]
    fn fsc_kernels_obey_the_batch_law(
        seed in 0u64..1_000,
        len in 64usize..512,
        cuts in proptest::collection::vec(0usize..512, 0..5),
    ) {
        let n = 256;
        let stream = zipf_stream(n, len, 1.2, seed);
        let params = Params::new(2.0, 0.3, n, stream.len()).with_seed(seed);

        check_batch_law(
            |t| SampleAndHold::new(&params, stream.len(), t, seed),
            frequency_digest,
            &stream,
            &cuts,
        );
        check_batch_law(
            |t| FullSampleAndHold::new(&params, t, seed),
            frequency_digest,
            &stream,
            &cuts,
        );
        check_batch_law(
            |_| {
                FewStateHeavyHitters::new(
                    params.clone().with_tracker(TrackerKind::FullAddressTracked),
                )
            },
            |a| {
                let mut d = frequency_digest(a);
                d.push(a.rough_fp().to_bits());
                d
            },
            &stream,
            &cuts,
        );
        check_batch_law(
            |t| FpEstimator::with_tracker(params.clone(), t),
            |a| vec![a.estimate_moment().to_bits()],
            &stream,
            &cuts,
        );
        check_batch_law(
            |t| FpSmallEstimator::with_tracker(0.5, 0.4, seed, t),
            |a| vec![a.estimate_moment().to_bits()],
            &stream,
            &cuts,
        );
        check_batch_law(
            |_| EntropyFewState::new(0.3, n, stream.len(), seed),
            |a| vec![a.estimate_entropy().to_bits()],
            &stream,
            &cuts,
        );
    }

    /// Lane-width sweep: the lane-packed sketch kernels must be bit-identical to
    /// the per-item path — answers, StateReports, and per-address wear — at
    /// *every* supported width (1 is the scalar fallback, 8 the default), for
    /// random batch splits and seeds.  The per-width instances also run under
    /// address tracking, so a lane kernel that writes the right totals to the
    /// wrong cells (or in the wrong epochs) is caught here, not just one that
    /// miscounts.
    #[test]
    fn lane_widths_are_observably_identical(
        seed in 0u64..1_000,
        len in 1usize..400,
        cuts in proptest::collection::vec(0usize..400, 0..5),
    ) {
        let stream = zipf_stream(256, len, 1.1, seed);

        for &w in &few_state_changes::counters::lanes::LANE_WIDTHS {
            check_batch_law(
                |t| CountMin::with_tracker(t, 64, 4, seed).with_lanes(w),
                frequency_digest,
                &stream,
                &cuts,
            );
            check_batch_law(
                |t| CountSketch::with_tracker(t, 64, 3, seed).with_lanes(w),
                frequency_digest,
                &stream,
                &cuts,
            );
            check_batch_law(
                |t| AmsSketch::with_tracker(t, 3, 16, seed).with_lanes(w),
                |a| vec![a.estimate_moment().to_bits()],
                &stream,
                &cuts,
            );
        }
    }

    /// Run-length kernels (ExactCounting, MisraGries, SpaceSaving, CountMin) ≡
    /// per-item updates on bursty streams, including the fallback paths (absent
    /// items, full tables, the Misra-Gries decrement branch).
    #[test]
    fn run_kernels_obey_the_run_law(
        seed in 0u64..1_000,
        len in 1usize..200,
    ) {
        let stream = burstify(&zipf_stream(64, len, 1.0, seed));

        check_run_law(
            |t| ExactCounting::with_tracker(t, 2.0),
            frequency_digest,
            &stream,
        );
        check_run_law(|t| MisraGries::with_tracker(t, 6), frequency_digest, &stream);
        check_run_law(|t| SpaceSaving::with_tracker(t, 6), frequency_digest, &stream);
        check_run_law(
            |t| CountMin::with_tracker(t, 32, 4, seed),
            frequency_digest,
            &stream,
        );
    }
}

/// Degenerate inputs: empty streams, empty batches, and single-item runs must all
/// agree with the per-item path (and with each other).
#[test]
fn batch_law_handles_degenerate_inputs() {
    check_batch_law(
        |t| CountMin::with_tracker(t, 16, 2, 1),
        frequency_digest,
        &[],
        &[0, 0, 3],
    );
    check_batch_law(
        |t| AmsSketch::with_tracker(t, 2, 8, 2),
        |a| vec![a.estimate_moment().to_bits()],
        &[7],
        &[0, 1, 1],
    );
    check_run_law(
        |t| SpaceSaving::with_tracker(t, 4),
        frequency_digest,
        &[9, 9, 9, 9],
    );
    // process_runs with explicit zero-length runs is a no-op.
    let t = StateTracker::new();
    let mut alg = ExactCounting::with_tracker(&t, 1.0);
    alg.process_runs(&[(5, 0), (6, 2), (7, 0)]);
    assert_eq!(alg.report().epochs, 2);
    assert_eq!(alg.estimate(6), 2.0);
    assert_eq!(alg.estimate(5), 0.0);
}
