//! Serving-view laws: the cached [`Engine::query`] path must be **observably
//! indistinguishable** from the always-rebuild [`Engine::query_fresh`] oracle,
//! under arbitrary interleavings of ingest and queries — while rebuilding the
//! merged summary only when the state-change generation says it has to.
//!
//! Three laws, each checked for every engine-capable summary (exact-merge
//! sketches and bounded-merge counter tables alike):
//!
//! 1. **Answer equivalence** — at every interleaving point, `query` (cached)
//!    and `query_fresh` (rebuild) return identical answers for identical probes.
//! 2. **Rebuild economy** — the view rebuilds at most once per interleaving
//!    round, and never more often than the generation clock advanced (a clean
//!    round costs zero rebuilds).
//! 3. **Generation monotonicity** — `Engine::generation()` never decreases:
//!    not across ingest, not across checkpoint/restore-in-place (`restore_from`
//!    taints the clock strictly forward so pre-failover cached stamps can never
//!    satisfy a post-failover freshness check).
//!
//! A fourth, non-proptest law pins the threaded ingest path: one big batch
//! (which crosses the parallel-ingest threshold) is observably identical to the
//! same items fed in small serial chunks.

use few_state_changes::baselines::{
    AmsSketch, CountMin, CountSketch, ExactCounting, MisraGries, SpaceSaving,
};
use few_state_changes::engine::{Engine, EngineAlgorithm, EngineConfig, Routing};
use few_state_changes::state::{Query, StateTracker, TrackerKind};
use few_state_changes::streamgen::zipf::zipf_stream;

use proptest::prelude::*;

fn config(shards: usize) -> EngineConfig {
    EngineConfig {
        shards,
        routing: Routing::RoundRobin,
        tracker: TrackerKind::Full,
        ..EngineConfig::default()
    }
}

fn probes() -> Vec<Query> {
    (0..48u64)
        .map(Query::Point)
        .chain([Query::Moment])
        .collect()
}

/// Drives one engine through `rounds` ingest/query rounds, checking the
/// answer-equivalence, rebuild-economy, and monotonicity laws at every step.
fn check_serve_laws<A: EngineAlgorithm>(
    make: impl FnMut(usize) -> A,
    stream: &[u64],
    cuts: &[usize],
) {
    let mut engine = Engine::new(config(4), make);
    let name = engine.shard(0).name().to_string();
    let probes = probes();

    let mut fed = 0usize;
    let mut last_generation = engine.generation();
    let mut rounds = 0u64;
    for &cut in cuts {
        let cut = cut.min(stream.len());
        if cut > fed {
            engine.ingest(&stream[fed..cut]);
            fed = cut;
        }
        rounds += 1;

        let generation = engine.generation();
        assert!(
            generation >= last_generation,
            "{name}: generation went backwards across ingest ({last_generation} -> {generation})"
        );
        last_generation = generation;

        // Law 1: the cached path answers exactly like a fresh rebuild — on the
        // first (cold) query of a round and on the repeat (warm) query alike.
        let cached = engine.query_many(&probes).expect("cached view");
        let fresh = engine.query_fresh_many(&probes).expect("fresh merge");
        assert_eq!(
            cached, fresh,
            "{name}: cached answers diverged from the rebuild oracle"
        );
        let warm = engine.query_many(&probes).expect("cached view");
        assert_eq!(warm, fresh, "{name}: warm cached answers diverged");

        // Law 2: querying twice in the same round costs at most one rebuild,
        // and the lifetime rebuild count never exceeds the rounds that could
        // have dirtied the view.
        assert!(
            engine.view_rebuilds() <= rounds,
            "{name}: {} rebuilds after {rounds} rounds — the view rebuilt without a \
             generation bump",
            engine.view_rebuilds()
        );
        assert_eq!(
            engine.generation(),
            generation,
            "{name}: queries moved the generation clock"
        );
    }

    // Drain the remainder so the final cross-check covers the whole stream.
    if fed < stream.len() {
        engine.ingest(&stream[fed..]);
    }
    assert_eq!(
        engine.query_many(&probes).expect("cached view"),
        engine.query_fresh_many(&probes).expect("fresh merge"),
        "{name}: final cached answers diverged from the rebuild oracle"
    );

    // Law 3 (failover leg): restore-in-place must keep the clock strictly
    // monotone even though the restored checkpoint carries a younger clock.
    let before = engine.generation();
    let bytes = engine.checkpoint();
    engine.restore_from(&bytes).expect("restore_from");
    let after = engine.generation();
    assert!(
        after > before,
        "{name}: restore_from must taint the generation forward ({before} -> {after})"
    );
    assert_eq!(
        engine.query_many(&probes).expect("cached view"),
        engine.query_fresh_many(&probes).expect("fresh merge"),
        "{name}: post-restore cached answers diverged from the rebuild oracle"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// All six engine-capable summaries obey the serving-view laws at arbitrary
    /// ingest/query interleavings (random streams, random round boundaries).
    #[test]
    fn cached_queries_obey_the_serving_laws(
        seed in 0u64..1_000,
        len in 32usize..600,
        mut cuts in proptest::collection::vec(0usize..600, 1..6),
    ) {
        let stream = zipf_stream(256, len, 1.1, seed);
        cuts.sort_unstable();

        check_serve_laws(
            |_| CountMin::with_tracker(&StateTracker::with_address_tracking(), 64, 4, seed),
            &stream,
            &cuts,
        );
        check_serve_laws(
            |_| CountSketch::with_tracker(&StateTracker::with_address_tracking(), 64, 3, seed),
            &stream,
            &cuts,
        );
        check_serve_laws(
            |_| AmsSketch::with_tracker(&StateTracker::with_address_tracking(), 3, 16, seed),
            &stream,
            &cuts,
        );
        check_serve_laws(
            |_| ExactCounting::with_tracker(&StateTracker::with_address_tracking(), 2.0),
            &stream,
            &cuts,
        );
        check_serve_laws(
            |_| MisraGries::with_tracker(&StateTracker::with_address_tracking(), 8),
            &stream,
            &cuts,
        );
        check_serve_laws(
            |_| SpaceSaving::with_tracker(&StateTracker::with_address_tracking(), 8),
            &stream,
            &cuts,
        );
    }

    /// The generation clock is monotone across engine checkpoint/restore chains:
    /// every `restore_from` strictly advances it, however short the hops.
    #[test]
    fn generation_is_monotone_across_restore_chains(
        seed in 0u64..1_000,
        hops in 1usize..5,
    ) {
        let stream = zipf_stream(128, 300, 1.2, seed);
        let mut engine = Engine::new(config(2), |_| {
            CountMin::with_tracker(&StateTracker::of_kind(TrackerKind::Lean), 32, 3, seed)
        });

        let mut last = engine.generation();
        for hop in 0..hops {
            engine.ingest(&stream[hop * 40..(hop + 1) * 40]);
            let grown = engine.generation();
            prop_assert!(grown >= last, "ingest rewound the clock");
            let bytes = engine.checkpoint();
            engine.restore_from(&bytes).expect("restore_from");
            let after = engine.generation();
            prop_assert!(after > grown, "restore hop {hop} failed to taint the clock");
            last = after;
        }
    }
}

/// One big ingest call (crossing the parallel-ingest threshold, so shards run on
/// scoped worker threads) is observably identical to the same items fed in small
/// serial chunks: same answers, same accounting, same checkpoint bytes.
#[test]
fn threaded_ingest_matches_serial_chunks() {
    let stream = zipf_stream(512, 64 * 1024, 1.1, 17);
    let make = |_| CountSketch::with_tracker(&StateTracker::with_address_tracking(), 128, 3, 17);

    let mut big = Engine::new(config(4), make);
    big.ingest(&stream);

    let mut chunked = Engine::new(config(4), make);
    for chunk in stream.chunks(1_000) {
        chunked.ingest(chunk);
    }

    assert_eq!(big.report(), chunked.report(), "accounting diverged");
    assert_eq!(
        big.query_many(&probes()).expect("merged view"),
        chunked.query_many(&probes()).expect("merged view"),
        "answers diverged"
    );
    assert_eq!(
        big.checkpoint(),
        chunked.checkpoint(),
        "checkpoint bytes diverged"
    );
}
