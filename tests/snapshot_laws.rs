//! Snapshot laws: `restore(checkpoint(a))` must be **observably identical** to `a` —
//! same answers, same [`StateReport`], same per-address wear table — and, because
//! internal randomness and caches are part of the serialized state, it must stay
//! identical on any stream processed *after* the restore.
//!
//! The check mirrors `tests/batch_laws.rs`: every production `StreamAlgorithm`
//! implementation is driven to a random checkpoint position on a random-seed stream,
//! checkpointed, restored, and compared against both the checkpointed instance and an
//! uninterrupted twin that processed the whole stream — reports, wear tables, answer
//! digests, and (for determinism) the checkpoint bytes themselves.  Algorithms whose
//! constructors accept a tracker run under `StateTracker::with_address_tracking`, so
//! the comparison pins the full wear table, not just aggregate counters.
//!
//! Corrupt-input behaviour is pinned separately: truncations and header corruptions
//! of real checkpoints must surface as typed `SnapshotError`s, never panics.

use few_state_changes::algorithms::sparse_recovery::FewStateSparseRecovery;
use few_state_changes::algorithms::{
    EntropyFewState, FewStateHeavyHitters, FpEstimator, FpSmallEstimator, FullSampleAndHold,
    Params, SampleAndHold,
};
use few_state_changes::baselines::{
    AmsSketch, CountMin, CountSketch, ExactCounting, MisraGries, PickAndDrop, SampleAndHoldClassic,
    SpaceSaving,
};
use few_state_changes::engine::{Engine, EngineAlgorithm, EngineConfig, Routing};
use few_state_changes::state::{
    EntropyEstimator, FrequencyEstimator, MomentEstimator, Query, Snapshot, SnapshotError,
    StateTracker, StreamAlgorithm, SupportRecovery, TrackerKind,
};
use few_state_changes::streamgen::zipf::zipf_stream;

use proptest::prelude::*;

/// Drives `make`'s instance to `split`, checkpoints, restores, and asserts the full
/// observable-identity law (immediately and after the remaining suffix), against an
/// uninterrupted twin.
fn check_snapshot_law<A: StreamAlgorithm + Snapshot>(
    make: impl Fn(&StateTracker) -> A,
    digest: impl Fn(&A) -> Vec<u64>,
    stream: &[u64],
    split: usize,
) {
    let split = split.min(stream.len());

    let t_whole = StateTracker::with_address_tracking();
    let mut whole = make(&t_whole);
    whole.process_batch(&stream[..split]);

    let t_subject = StateTracker::with_address_tracking();
    let mut subject = make(&t_subject);
    subject.process_batch(&stream[..split]);

    let bytes = subject.checkpoint();
    let mut restored = A::restore(&bytes)
        .unwrap_or_else(|e| panic!("{}: restore failed at split {split}: {e}", subject.name()));
    let name = subject.name().to_string();

    // Immediate identity: report, wear, and (determinism) the re-checkpoint — byte
    // comparisons come first because answer digests legitimately charge tracked
    // reads on some summaries.
    assert_eq!(
        restored.report(),
        subject.report(),
        "{name}: report diverged"
    );
    assert_eq!(
        restored.tracker().address_writes(),
        subject.tracker().address_writes(),
        "{name}: wear table diverged"
    );
    assert_eq!(
        restored.checkpoint(),
        bytes,
        "{name}: re-checkpoint is not byte-identical"
    );
    // Digest all three instances so the read charges a digest makes stay symmetric
    // across the instances still being compared below.
    let answers_whole = digest(&whole);
    assert_eq!(
        digest(&restored),
        digest(&subject),
        "{name}: answers diverged"
    );
    assert_eq!(
        digest(&subject),
        answers_whole,
        "{name}: twin construction is not deterministic"
    );

    // Future behaviour: the restored instance processes the suffix exactly as the
    // uninterrupted twin does (rng, caches, and addresses all survived the round
    // trip).
    restored.process_batch(&stream[split..]);
    whole.process_batch(&stream[split..]);
    assert_eq!(
        restored.report(),
        whole.report(),
        "{name}: post-restore report diverged from the uninterrupted run"
    );
    assert_eq!(
        restored.tracker().address_writes(),
        whole.tracker().address_writes(),
        "{name}: post-restore wear diverged from the uninterrupted run"
    );
    assert_eq!(
        restored.checkpoint(),
        whole.checkpoint(),
        "{name}: post-restore checkpoint bytes diverged from the uninterrupted run"
    );
    assert_eq!(
        digest(&restored),
        digest(&whole),
        "{name}: post-restore answers diverged from the uninterrupted run"
    );
}

fn frequency_digest<A: FrequencyEstimator>(alg: &A) -> Vec<u64> {
    let mut items = alg.tracked_items();
    items.sort_unstable();
    let mut out = items.clone();
    out.extend(items.iter().map(|&i| alg.estimate(i).to_bits()));
    out.extend((0u64..64).map(|i| alg.estimate(i).to_bits()));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Baseline sketches and summaries round-trip at arbitrary checkpoint positions.
    #[test]
    fn baseline_checkpoints_obey_the_snapshot_law(
        seed in 0u64..1_000,
        len in 1usize..400,
        split in 0usize..400,
    ) {
        let stream = zipf_stream(256, len, 1.1, seed);

        check_snapshot_law(
            |t| AmsSketch::with_tracker(t, 3, 16, seed),
            |a| vec![a.estimate_moment().to_bits()],
            &stream,
            split,
        );
        check_snapshot_law(
            |t| CountMin::with_tracker(t, 64, 4, seed),
            frequency_digest,
            &stream,
            split,
        );
        check_snapshot_law(
            |t| CountSketch::with_tracker(t, 64, 3, seed),
            frequency_digest,
            &stream,
            split,
        );
        check_snapshot_law(|t| MisraGries::with_tracker(t, 8), frequency_digest, &stream, split);
        check_snapshot_law(|t| SpaceSaving::with_tracker(t, 8), frequency_digest, &stream, split);
        check_snapshot_law(
            |t| ExactCounting::with_tracker(t, 2.0),
            |a| {
                let mut d = frequency_digest(a);
                d.push(a.estimate_moment().to_bits());
                d.push(a.estimate_entropy().to_bits());
                d.extend(a.recovered_support());
                d
            },
            &stream,
            split,
        );
        check_snapshot_law(
            |t| SampleAndHoldClassic::with_tracker(t, 0.08, seed),
            frequency_digest,
            &stream,
            split,
        );
        check_snapshot_law(
            |t| PickAndDrop::with_tracker(t, 16, 3, seed),
            |a| a.candidates().into_iter().flat_map(|(i, c)| [i, c]).collect(),
            &stream,
            split,
        );
        check_snapshot_law(
            |t| FewStateSparseRecovery::with_tracker(48, t),
            |a| {
                let mut d = a.recovered_support();
                d.push(a.overflowed() as u64);
                d
            },
            &stream,
            split,
        );
    }

    /// The paper's algorithms — including the held-counter tables whose Morris
    /// registers are allocated mid-stream — round-trip at arbitrary positions.
    #[test]
    fn fsc_checkpoints_obey_the_snapshot_law(
        seed in 0u64..1_000,
        len in 64usize..384,
        split in 0usize..384,
    ) {
        let n = 256;
        let stream = zipf_stream(n, len, 1.2, seed);
        let tracked = TrackerKind::FullAddressTracked;
        let params = Params::new(2.0, 0.3, n, stream.len())
            .with_seed(seed)
            .with_tracker(tracked);

        check_snapshot_law(
            |_| SampleAndHold::standalone(&params),
            frequency_digest,
            &stream,
            split,
        );
        check_snapshot_law(
            |_| FullSampleAndHold::standalone(&params),
            frequency_digest,
            &stream,
            split,
        );
        check_snapshot_law(
            |_| FewStateHeavyHitters::new(params.clone()),
            |a| {
                let mut d = frequency_digest(a);
                d.push(a.rough_fp().to_bits());
                d
            },
            &stream,
            split,
        );
        check_snapshot_law(
            |_| FpEstimator::new(params.clone()),
            |a| vec![a.estimate_moment().to_bits()],
            &stream,
            split,
        );
        check_snapshot_law(
            |t| FpSmallEstimator::with_tracker(0.5, 0.4, seed, t),
            |a| vec![a.estimate_moment().to_bits()],
            &stream,
            split,
        );
        check_snapshot_law(
            |_| {
                // EntropyFewState builds its own Params internally (Full tracker);
                // wear is None on both sides, and the law still pins reports/answers.
                EntropyFewState::new(0.3, n, stream.len(), seed)
            },
            |a| vec![a.estimate_entropy().to_bits()],
            &stream,
            split,
        );
    }
}

/// Degenerate positions: empty streams, checkpoint-before-anything, and
/// checkpoint-at-the-end must all round-trip.
#[test]
fn snapshot_law_handles_degenerate_positions() {
    check_snapshot_law(
        |t| CountMin::with_tracker(t, 16, 2, 1),
        frequency_digest,
        &[],
        0,
    );
    check_snapshot_law(
        |t| MisraGries::with_tracker(t, 4),
        frequency_digest,
        &[7, 7, 8],
        0,
    );
    check_snapshot_law(
        |t| AmsSketch::with_tracker(t, 2, 8, 2),
        |a| vec![a.estimate_moment().to_bits()],
        &[5, 6, 7],
        3,
    );
}

/// Round-trips **every** shard of a sharded engine individually — not just shard 0,
/// which the merged-query path already restores on every query — and reassembles an
/// engine from the restored shards, asserting the merged answers, combined report,
/// and engine checkpoint are identical to the original.
fn check_engine_shard_law<A: EngineAlgorithm>(
    make: impl FnMut(usize) -> A,
    digest: impl Fn(&A) -> Vec<u64>,
    stream: &[u64],
) {
    let config = EngineConfig {
        shards: 4,
        routing: Routing::RoundRobin,
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(config, make);
    engine.ingest(stream);
    let name = engine.shard(0).name().to_string();

    let probes: Vec<Query> = (0..32u64)
        .map(Query::Point)
        .chain([Query::Moment])
        .collect();
    let merged_before = engine.query_many(&probes).expect("merged view");

    let mut restored_shards: Vec<A> = Vec::new();
    for i in 0..engine.shards() {
        let shard = engine.shard(i);
        let bytes = shard.checkpoint();
        let restored =
            A::restore(&bytes).unwrap_or_else(|e| panic!("{name}: shard {i} restore failed: {e}"));
        assert_eq!(
            restored.report(),
            shard.report(),
            "{name}: shard {i} report diverged"
        );
        assert_eq!(
            restored.tracker().address_writes(),
            shard.tracker().address_writes(),
            "{name}: shard {i} wear table diverged"
        );
        assert_eq!(
            restored.checkpoint(),
            bytes,
            "{name}: shard {i} re-checkpoint is not byte-identical"
        );
        // Digest both sides so read charges stay symmetric for the comparisons below.
        assert_eq!(
            digest(&restored),
            digest(shard),
            "{name}: shard {i} answers diverged"
        );
        restored_shards.push(restored);
    }

    // Engine-level recovery must agree with the per-shard round trips: every shard
    // of the restored engine is byte-identical to its individually restored twin,
    // and the restored engine resumes at the original ingest position.
    let mut rebuilt = Engine::<A>::restore(&engine.checkpoint())
        .unwrap_or_else(|e| panic!("{name}: engine restore failed: {e}"));
    assert_eq!(
        rebuilt.ingested(),
        engine.ingested(),
        "{name}: rebuilt engine lost its ingest position"
    );
    for (i, twin) in restored_shards.iter().enumerate() {
        assert_eq!(
            rebuilt.shard(i).checkpoint(),
            twin.checkpoint(),
            "{name}: engine-level restore of shard {i} diverged from per-shard restore"
        );
    }
    assert_eq!(
        rebuilt.report(),
        engine.report(),
        "{name}: rebuilt engine report diverged"
    );
    assert_eq!(
        rebuilt.checkpoint(),
        engine.checkpoint(),
        "{name}: rebuilt engine checkpoint diverged"
    );
    // Query both engines so any read charges stay symmetric for the ingest below.
    assert_eq!(
        rebuilt.query_many(&probes).expect("merged view"),
        merged_before,
        "{name}: rebuilt engine merged answers diverged"
    );
    assert_eq!(
        engine.query_many(&probes).expect("merged view"),
        merged_before,
        "{name}: original engine merged answers drifted"
    );

    // The rebuilt engine also behaves identically on further traffic.
    rebuilt.ingest(stream);
    engine.ingest(stream);
    assert_eq!(
        rebuilt.checkpoint(),
        engine.checkpoint(),
        "{name}: rebuilt engine diverged on post-restore ingest"
    );
}

/// Engine coverage: the snapshot law holds shard-by-shard for exact-merge sketches
/// and bounded-merge counter summaries alike.
#[test]
fn engine_checkpoints_round_trip_every_shard() {
    let stream = zipf_stream(256, 4_000, 1.1, 11);
    check_engine_shard_law(
        |_| CountMin::with_tracker(&StateTracker::with_address_tracking(), 64, 4, 11),
        frequency_digest,
        &stream,
    );
    check_engine_shard_law(
        |_| AmsSketch::with_tracker(&StateTracker::with_address_tracking(), 3, 16, 11),
        |a| vec![a.estimate_moment().to_bits()],
        &stream,
    );
    check_engine_shard_law(
        |_| MisraGries::with_tracker(&StateTracker::with_address_tracking(), 8),
        frequency_digest,
        &stream,
    );
}

/// Every truncation of a real checkpoint, and a corrupted header, must yield a typed
/// error — never a panic (the versioned-header satellite).
#[test]
fn corrupt_checkpoints_error_instead_of_panicking() {
    let mut alg = CountMin::new(32, 3, 9);
    alg.process_stream(&zipf_stream(64, 200, 1.1, 3));
    let bytes = alg.checkpoint();

    for cut in 0..bytes.len() {
        assert!(
            CountMin::restore(&bytes[..cut]).is_err(),
            "truncation at {cut} unexpectedly restored"
        );
    }

    // Wrong algorithm id.
    assert!(matches!(
        CountSketch::restore(&bytes),
        Err(SnapshotError::WrongAlgorithm { .. })
    ));

    // Flipped magic.
    let mut bad = bytes.clone();
    bad[0] ^= 0xFF;
    assert!(matches!(
        CountMin::restore(&bad),
        Err(SnapshotError::BadMagic)
    ));

    // Future version.
    let mut future = bytes.clone();
    future[4] = 0xFE;
    assert!(matches!(
        CountMin::restore(&future),
        Err(SnapshotError::UnsupportedVersion(_))
    ));

    // Trailing garbage.
    let mut long = bytes.clone();
    long.push(0);
    assert!(matches!(
        CountMin::restore(&long),
        Err(SnapshotError::TrailingBytes(1))
    ));

    // An ensemble checkpoint survives the same treatment (held Morris counters,
    // nested per-copy state).
    let params = Params::new(2.0, 0.3, 128, 256).with_seed(5);
    let mut sah = SampleAndHold::standalone(&params);
    sah.process_stream(&zipf_stream(128, 256, 1.2, 5));
    let bytes = sah.checkpoint();
    for cut in (0..bytes.len()).step_by(7) {
        assert!(
            SampleAndHold::restore(&bytes[..cut]).is_err(),
            "ensemble truncation at {cut} unexpectedly restored"
        );
    }
}
