//! Reproducibility: every generator and every algorithm is a deterministic function of
//! its seed, so recorded experiment tables can be regenerated exactly.

use few_state_changes::algorithms::{FewStateHeavyHitters, FpEstimator, Params};
use few_state_changes::baselines::CountSketch;
use few_state_changes::state::{FrequencyEstimator, MomentEstimator, StreamAlgorithm};
use few_state_changes::streamgen::blocks::counterexample_stream;
use few_state_changes::streamgen::lower_bound::moment_lower_bound_pair;
use few_state_changes::streamgen::netflow::{flow_trace, FlowTraceSpec};
use few_state_changes::streamgen::zipf::zipf_stream;

#[test]
fn generators_are_pure_functions_of_their_seeds() {
    assert_eq!(
        zipf_stream(512, 2_000, 1.1, 9),
        zipf_stream(512, 2_000, 1.1, 9)
    );
    assert_eq!(
        counterexample_stream(8).stream,
        counterexample_stream(8).stream
    );
    let a = moment_lower_bound_pair(1024, 2.0, 4);
    let b = moment_lower_bound_pair(1024, 2.0, 4);
    assert_eq!(a.s1, b.s1);
    assert_eq!(a.planted_item, b.planted_item);
    let spec = FlowTraceSpec::default();
    assert_eq!(flow_trace(&spec).packets, flow_trace(&spec).packets);
}

#[test]
fn algorithms_with_equal_seeds_produce_identical_summaries() {
    let n = 1 << 11;
    let m = 4 * n;
    let stream = zipf_stream(n, m, 1.2, 3);

    let run_hh = || {
        let mut alg = FewStateHeavyHitters::new(Params::new(2.0, 0.2, n, m).with_seed(77));
        alg.process_stream(&stream);
        (
            alg.tracked_items(),
            alg.report().state_changes,
            alg.rough_fp().to_bits(),
        )
    };
    assert_eq!(run_hh(), run_hh());

    let run_fp = || {
        let mut alg = FpEstimator::new(Params::new(2.0, 0.25, n, m).with_seed(11));
        alg.process_stream(&stream);
        (alg.estimate_moment().to_bits(), alg.report().state_changes)
    };
    assert_eq!(run_fp(), run_fp());

    let run_cs = || {
        let mut alg = CountSketch::for_error(0.1, 0.05, 13);
        alg.process_stream(&stream);
        (0..32u64)
            .map(|i| alg.estimate(i).to_bits())
            .collect::<Vec<_>>()
    };
    assert_eq!(run_cs(), run_cs());
}

#[test]
fn sharded_runs_are_deterministic_with_derived_per_shard_seeds() {
    use few_state_changes::baselines::MisraGries;
    use few_state_changes::state::StateTracker;
    use fsc_bench::sharded::{run_sharded, shard_seed};

    // The seed derivation is a pure function of (master, shard): equal inputs agree,
    // different shards (and different masters) disagree — so sharded runs neither
    // drift between invocations nor feed identical randomness to every shard.
    let master = 0xF5C_5EED;
    for shard in 0..8 {
        assert_eq!(shard_seed(master, shard), shard_seed(master, shard));
        assert_ne!(
            shard_seed(master, shard),
            master,
            "derivation must not be the identity"
        );
    }
    let distinct: std::collections::HashSet<u64> = (0..64).map(|s| shard_seed(master, s)).collect();
    assert_eq!(
        distinct.len(),
        64,
        "per-shard seeds must be pairwise distinct"
    );
    assert_ne!(shard_seed(1, 0), shard_seed(2, 0));

    // A sharded run is a deterministic function of (stream, shards, master seed):
    // running it twice produces identical merged summaries and identical accounting.
    let stream = zipf_stream(1 << 11, 8_192, 1.2, 3);
    let run_once = || {
        let outcome = run_sharded(&stream, 4, |_shard| {
            MisraGries::with_tracker(&StateTracker::lean(), 32)
        });
        let mut items = outcome.merged.tracked_items();
        items.sort_unstable();
        let estimates: Vec<u64> = items
            .iter()
            .map(|&i| outcome.merged.estimate(i).to_bits())
            .collect();
        (
            items,
            estimates,
            outcome.combined_report.state_changes,
            outcome.combined_report.epochs,
        )
    };
    assert_eq!(run_once(), run_once());
}

#[test]
fn different_seeds_actually_change_the_randomness() {
    let n = 1 << 11;
    let m = 2 * n;
    let stream = zipf_stream(n, m, 1.2, 3);
    let mut a = FpEstimator::new(Params::new(2.0, 0.25, n, m).with_seed(1));
    let mut b = FpEstimator::new(Params::new(2.0, 0.25, n, m).with_seed(2));
    a.process_stream(&stream);
    b.process_stream(&stream);
    assert_ne!(
        a.report().state_changes,
        b.report().state_changes,
        "different seeds should sample different positions"
    );
}
