//! Reproducibility: every generator and every algorithm is a deterministic function of
//! its seed, so recorded experiment tables can be regenerated exactly.

use few_state_changes::algorithms::{FewStateHeavyHitters, FpEstimator, Params};
use few_state_changes::baselines::CountSketch;
use few_state_changes::state::{FrequencyEstimator, MomentEstimator, StreamAlgorithm};
use few_state_changes::streamgen::blocks::counterexample_stream;
use few_state_changes::streamgen::lower_bound::moment_lower_bound_pair;
use few_state_changes::streamgen::netflow::{flow_trace, FlowTraceSpec};
use few_state_changes::streamgen::zipf::zipf_stream;

#[test]
fn generators_are_pure_functions_of_their_seeds() {
    assert_eq!(
        zipf_stream(512, 2_000, 1.1, 9),
        zipf_stream(512, 2_000, 1.1, 9)
    );
    assert_eq!(
        counterexample_stream(8).stream,
        counterexample_stream(8).stream
    );
    let a = moment_lower_bound_pair(1024, 2.0, 4);
    let b = moment_lower_bound_pair(1024, 2.0, 4);
    assert_eq!(a.s1, b.s1);
    assert_eq!(a.planted_item, b.planted_item);
    let spec = FlowTraceSpec::default();
    assert_eq!(flow_trace(&spec).packets, flow_trace(&spec).packets);
}

#[test]
fn algorithms_with_equal_seeds_produce_identical_summaries() {
    let n = 1 << 11;
    let m = 4 * n;
    let stream = zipf_stream(n, m, 1.2, 3);

    let run_hh = || {
        let mut alg = FewStateHeavyHitters::new(Params::new(2.0, 0.2, n, m).with_seed(77));
        alg.process_stream(&stream);
        (
            alg.tracked_items(),
            alg.report().state_changes,
            alg.rough_fp().to_bits(),
        )
    };
    assert_eq!(run_hh(), run_hh());

    let run_fp = || {
        let mut alg = FpEstimator::new(Params::new(2.0, 0.25, n, m).with_seed(11));
        alg.process_stream(&stream);
        (alg.estimate_moment().to_bits(), alg.report().state_changes)
    };
    assert_eq!(run_fp(), run_fp());

    let run_cs = || {
        let mut alg = CountSketch::for_error(0.1, 0.05, 13);
        alg.process_stream(&stream);
        (0..32u64)
            .map(|i| alg.estimate(i).to_bits())
            .collect::<Vec<_>>()
    };
    assert_eq!(run_cs(), run_cs());
}

#[test]
fn different_seeds_actually_change_the_randomness() {
    let n = 1 << 11;
    let m = 2 * n;
    let stream = zipf_stream(n, m, 1.2, 3);
    let mut a = FpEstimator::new(Params::new(2.0, 0.25, n, m).with_seed(1));
    let mut b = FpEstimator::new(Params::new(2.0, 0.25, n, m).with_seed(2));
    a.process_stream(&stream);
    b.process_stream(&stream);
    assert_ne!(
        a.report().state_changes,
        b.report().state_changes,
        "different seeds should sample different positions"
    );
}
