//! Laws of durable ingest: the write-ahead journal and crash recovery.
//!
//! * **Torn-tail totality** — for *every* byte-length prefix of a journal
//!   file (every place a crash can cut a write), opening the journal keeps
//!   exactly the whole records the prefix contains, truncates the rest with
//!   typed counts, and leaves a file that re-scans clean.  Checked both at
//!   the `Wal` layer (every cut, exhaustively) and through a live server
//!   (seeded cuts of a real tenant's journal).
//! * **Zero acked-write loss** — in `AckAfterDurable` mode, a crash injected
//!   at *every* point inside the ingest write path (before the journal
//!   append, after it, after the in-memory apply) and at every batch position
//!   recovers a server that answers exactly like a registry twin fed at least
//!   every acked batch.
//! * **Bounded relaxed loss** — in the default `AckAfterApply` mode, a
//!   simulated power loss (journal truncated to its fsynced boundary) loses
//!   at most one group-commit window of acked batches, and the sequence-
//!   numbered client replays the tail to exact convergence.

use std::path::PathBuf;

use fsc_bench::registry::serve_factory;
use fsc_engine::EngineConfig;
use fsc_serve::faults::splitmix64;
use fsc_serve::wal::{scan, Wal, WAL_HEADER};
use fsc_serve::{
    Client, ClientConfig, CrashPoint, Durability, FaultPlan, Server, ServerConfig, ServerHandle,
};
use fsc_state::{Answer, Query};
use proptest::prelude::*;

// --- helpers ------------------------------------------------------------------

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fsc-recovery-laws-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(
    dir: &PathBuf,
    faults: FaultPlan,
    durability: Durability,
    group_commit: u64,
) -> (ServerHandle, fsc_serve::RecoveryReport) {
    let config = ServerConfig::new(dir)
        .with_faults(faults)
        .with_durability(durability)
        .with_group_commit(group_commit);
    Server::start("127.0.0.1:0", config, serve_factory()).expect("bind")
}

/// `n` seeded batches of `per` items over a small universe.
fn batches(n: usize, per: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = seed;
    (0..n)
        .map(|_| (0..per).map(|_| splitmix64(&mut rng) % 512).collect())
        .collect()
}

/// Probe answers of a registry twin fed `upto` of `batches`.
fn twin_answers(batches: &[Vec<u64>], upto: usize, probes: &[Query]) -> Vec<Answer> {
    let factory = serve_factory();
    let mut engine = factory(
        "count_min",
        EngineConfig {
            shards: 2,
            ..EngineConfig::default()
        },
    )
    .expect("count_min is engine-capable");
    for batch in &batches[..upto] {
        engine.ingest(batch);
    }
    probes
        .iter()
        .map(|q| engine.query_fresh(q).expect("twin answers"))
        .collect()
}

fn served_answers(c: &mut Client, probes: &[Query]) -> Vec<Answer> {
    probes
        .iter()
        .map(|q| c.query("t0", *q).expect("query"))
        .collect()
}

fn probes() -> Vec<Query> {
    (0..16).map(Query::Point).chain([Query::Moment]).collect()
}

// --- torn-tail totality at the Wal layer --------------------------------------

/// Builds a journal of `shapes.len()` records (one per item count), returns
/// the file's bytes.
fn journal_image(dir: &PathBuf, shapes: &[usize]) -> Vec<u8> {
    std::fs::create_dir_all(dir).expect("mkdir");
    let mut wal = Wal::create(dir).expect("create journal");
    let none = FaultPlan::none();
    for (seq, &n) in shapes.iter().enumerate() {
        let items: Vec<u64> = (0..n as u64).map(|i| i * 31 + seq as u64).collect();
        wal.append(seq as u64, &items, &none).expect("append");
    }
    wal.sync().expect("sync");
    std::fs::read(fsc_serve::wal::wal_path(dir)).expect("read journal")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For EVERY byte-length prefix of a journal — every place a crash can cut
    /// a write — opening recovers exactly the whole records the prefix holds,
    /// reports the rest as typed truncation, and repairs the file in place so
    /// a second scan is clean.
    #[test]
    fn every_byte_prefix_of_a_journal_recovers_its_whole_records(seed in 0u64..10_000) {
        let mut rng = seed;
        let shapes: Vec<usize> = (0..3).map(|_| (splitmix64(&mut rng) % 9) as usize).collect();
        let build = tmp_dir(&format!("image-{seed}"));
        let image = journal_image(&build, &shapes);
        let _ = std::fs::remove_dir_all(&build);

        let dir = tmp_dir(&format!("cut-{seed}"));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = fsc_serve::wal::wal_path(&dir);
        for cut in 0..=image.len() {
            std::fs::write(&path, &image[..cut]).expect("write cut prefix");
            let oracle = scan(&image[..cut]);
            let (wal, recovery) = Wal::open(&dir, 0).expect("open never errors on damage");
            prop_assert_eq!(
                &recovery.replay, &oracle.records,
                "cut {} must keep exactly the whole records", cut
            );
            prop_assert_eq!(recovery.skipped, 0);
            // Everything past the last whole record is truncated — including a
            // damaged header, which is rewritten from scratch.
            let expected_truncated = cut as u64 - oracle.valid_len.min(cut as u64);
            prop_assert_eq!(
                recovery.truncated_bytes, expected_truncated,
                "cut {}: truncation counts every damaged byte", cut
            );
            prop_assert_eq!(
                recovery.damage.is_some(),
                expected_truncated > 0 || cut < WAL_HEADER as usize,
                "cut {}: damage is typed exactly when something was repaired", cut
            );
            prop_assert_eq!(wal.records(), oracle.records.len() as u64);
            // The repaired file re-scans clean.
            let repaired = std::fs::read(&path).expect("read repaired");
            let rescan = scan(&repaired);
            prop_assert!(rescan.damage.is_none(), "cut {} left damage behind", cut);
            prop_assert_eq!(rescan.records, oracle.records);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// --- torn-tail totality through a live server ---------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Cut a real tenant's journal at a seeded byte offset (as a crash mid-
    /// append would), restart the server, and it must recover exactly the
    /// whole-record prefix, report the truncation typed, and let the client
    /// replay the lost tail to exact convergence.
    #[test]
    fn a_cut_journal_tail_recovers_the_longest_whole_prefix(seed in 0u64..10_000) {
        let dir = tmp_dir(&format!("server-cut-{seed}"));
        let work = batches(3, 32, seed ^ 0x7A11);
        let probes = probes();

        let (server, _) = start(
            &dir,
            FaultPlan::seeded(seed).with_crash_frame(),
            Durability::AckAfterDurable,
            8,
        );
        let mut c = Client::new(server.addr(), ClientConfig::default());
        c.create_tenant("t0", "count_min", 2).expect("create");
        for (seq, batch) in work.iter().enumerate() {
            // Ignore the `applied` flag: a lost ack plus a client retry
            // legally acks `applied = false` (idempotent duplicate); the twin
            // equality below pins that every batch landed exactly once.
            c.ingest("t0", seq as u64, batch).expect("ingest");
        }
        c.crash();
        server.join();

        // Cut the journal at a seeded offset past the header.
        let path = fsc_serve::wal::wal_path(&dir.join("t0"));
        let image = std::fs::read(&path).expect("read journal");
        let mut rng = seed ^ 0xC07;
        let cut = WAL_HEADER as usize
            + (splitmix64(&mut rng) % (image.len() as u64 - WAL_HEADER)) as usize;
        std::fs::write(&path, &image[..cut]).expect("cut journal");
        let oracle = scan(&image[..cut]);
        let kept = oracle.records.len();

        let (server, report) = start(
            &dir,
            FaultPlan::none(),
            Durability::AckAfterDurable,
            8,
        );
        prop_assert_eq!(report.recovered(), 1, "t0 comes back: {}", &report);
        prop_assert_eq!(report.total_wal_replayed(), kept as u64);
        prop_assert_eq!(
            report.total_wal_truncated_bytes(),
            cut as u64 - oracle.valid_len,
            "truncation is reported typed: {}", &report
        );
        prop_assert_eq!(report.is_clean(), cut as u64 == oracle.valid_len);

        let mut c = Client::new(server.addr(), ClientConfig::default());
        prop_assert_eq!(
            served_answers(&mut c, &probes),
            twin_answers(&work, kept, &probes),
            "restart answers as the {}-batch twin", kept
        );
        // The client replays the truncated tail; convergence is exact.  (The
        // `applied` flag is not asserted: a retried ack may be a duplicate.)
        for (seq, batch) in work.iter().enumerate().skip(kept) {
            c.ingest("t0", seq as u64, batch).expect("replay");
        }
        prop_assert_eq!(
            served_answers(&mut c, &probes),
            twin_answers(&work, work.len(), &probes)
        );
        server.stop().expect("stop");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// --- the zero-acked-loss law --------------------------------------------------

/// In durable mode, crash at every point inside the write path × every batch
/// position: the restart must hold at least every acked batch and answer
/// exactly like the twin of what it holds.
#[test]
fn durable_mode_loses_no_acked_batch_at_any_crash_point() {
    let work = batches(5, 32, 0xD0_5EED);
    let probes = probes();
    for point in [
        CrashPoint::BeforeJournal,
        CrashPoint::AfterJournal,
        CrashPoint::AfterApply,
    ] {
        for nth in 1..=work.len() as u64 {
            let dir = tmp_dir(&format!("crash-{point:?}-{nth}"));
            let (server, _) = start(
                &dir,
                FaultPlan::seeded(nth).with_crash_at(point, nth),
                Durability::AckAfterDurable,
                8,
            );
            // No retries: the armed crash must surface as the failed ingest
            // it is, never be re-attempted against a dying server.  The long
            // timeout keeps a loaded test machine from faking an early death
            // (which would leave the crash unarmed and the join hanging).
            let mut c = Client::new(
                server.addr(),
                ClientConfig {
                    retries: 0,
                    timeout: std::time::Duration::from_secs(10),
                    ..ClientConfig::default()
                },
            );
            c.create_tenant("t0", "count_min", 2).expect("create");
            let mut acked = 0u64;
            for (seq, batch) in work.iter().enumerate() {
                match c.ingest("t0", seq as u64, batch) {
                    Ok(_) => acked += 1,
                    Err(_) => break,
                }
            }
            assert_eq!(
                acked,
                nth - 1,
                "{point:?} at {nth}: the nth ingest dies unacked"
            );
            server.join();

            let (server, report) = start(&dir, FaultPlan::none(), Durability::AckAfterDurable, 8);
            assert_eq!(report.recovered(), 1, "{point:?} at {nth}: {report}");
            assert!(
                report.is_clean(),
                "{point:?} at {nth}: a crash between writes damages nothing: {report}"
            );
            let mut c = Client::new(server.addr(), ClientConfig::default());
            let next_seq = c.stats("t0").expect("stats").next_seq;
            assert!(
                next_seq >= acked,
                "{point:?} at {nth}: recovered {next_seq} < acked {acked} — an \
                 acknowledged batch was lost"
            );
            assert_eq!(
                served_answers(&mut c, &probes),
                twin_answers(&work, next_seq as usize, &probes),
                "{point:?} at {nth}: restart must answer as the {next_seq}-batch twin"
            );
            server.stop().expect("stop");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

// --- bounded relaxed loss -----------------------------------------------------

/// In the relaxed default, power loss costs at most one group-commit window
/// of acked batches — and the client replays back to exact convergence.
#[test]
fn relaxed_power_loss_is_bounded_by_the_group_commit_window() {
    const GROUP_COMMIT: u64 = 4;
    let work = batches(6, 32, 0x9_5EED);
    let probes = probes();
    let dir = tmp_dir("power-loss");

    let (server, _) = start(
        &dir,
        FaultPlan::seeded(3).with_crash_frame(),
        Durability::AckAfterApply,
        GROUP_COMMIT,
    );
    let mut c = Client::new(server.addr(), ClientConfig::default());
    c.create_tenant("t0", "count_min", 2).expect("create");
    for (seq, batch) in work.iter().enumerate() {
        // `applied` not asserted: a lost ack plus a retry is a legal duplicate.
        c.ingest("t0", seq as u64, batch).expect("ingest");
    }
    c.crash();
    server.join();

    // Power loss: the file keeps only what was fsynced — whole group-commit
    // windows.  6 appends at window 4 ⇒ 4 survive.
    let record_bytes = 20 + 8 * 32u64;
    let synced = (work.len() as u64 / GROUP_COMMIT) * GROUP_COMMIT;
    let path = fsc_serve::wal::wal_path(&dir.join("t0"));
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&path)
        .expect("open journal");
    file.set_len(WAL_HEADER + synced * record_bytes)
        .expect("truncate to the fsynced boundary");
    drop(file);

    let (server, report) = start(
        &dir,
        FaultPlan::none(),
        Durability::AckAfterApply,
        GROUP_COMMIT,
    );
    assert_eq!(report.recovered(), 1, "{report}");
    let mut c = Client::new(server.addr(), ClientConfig::default());
    let next_seq = c.stats("t0").expect("stats").next_seq;
    let lost = work.len() as u64 - next_seq;
    assert!(
        lost <= GROUP_COMMIT,
        "lost {lost} acked batches, more than the group-commit window"
    );
    assert_eq!(next_seq, synced, "exactly the unsynced tail is lost");
    assert_eq!(
        served_answers(&mut c, &probes),
        twin_answers(&work, next_seq as usize, &probes)
    );
    // The sequence-numbered client replays the lost tail exactly once.
    for seq in next_seq..work.len() as u64 {
        c.ingest("t0", seq, &work[seq as usize]).expect("replay");
    }
    assert_eq!(
        served_answers(&mut c, &probes),
        twin_answers(&work, work.len(), &probes),
        "replay converges to the full twin"
    );
    server.stop().expect("stop");
    let _ = std::fs::remove_dir_all(&dir);
}
