//! Umbrella-crate smoke tests: every re-export resolves, and a tiny end-to-end run
//! works through the public surface alone.

use few_state_changes::algorithms::{Params, SampleAndHold};
use few_state_changes::state::StreamAlgorithm;
use few_state_changes::streamgen::zipf::zipf_stream;

/// Every documented re-export of the umbrella crate resolves to its crate.
#[test]
fn reexports_resolve() {
    // One load-bearing item per re-exported module; a rename or dropped re-export
    // fails this test at compile time.
    let _state: fn() -> few_state_changes::state::StateTracker =
        few_state_changes::state::StateTracker::new;
    let _counters: fn(&few_state_changes::state::StateTracker) -> _ =
        few_state_changes::counters::ExactCounter::new;
    let _streamgen: fn(&[u64]) -> few_state_changes::streamgen::FrequencyVector =
        few_state_changes::streamgen::FrequencyVector::from_stream;
    let _baselines: fn(usize) -> few_state_changes::baselines::MisraGries =
        few_state_changes::baselines::MisraGries::new;
    let _algorithms: fn(f64, f64, usize, usize) -> few_state_changes::algorithms::Params =
        few_state_changes::algorithms::Params::new;
}

/// `VERSION` matches the manifest version baked in at compile time.
#[test]
fn version_is_populated() {
    assert_eq!(few_state_changes::VERSION, env!("CARGO_PKG_VERSION"));
    assert!(!few_state_changes::VERSION.is_empty());
}

/// End-to-end: SampleAndHold over a small Zipf stream processes every update and
/// writes to memory at least once, but far less often than once per update.
#[test]
fn sample_and_hold_over_zipf_stream() {
    let n = 1 << 10;
    let m = 8 * n;
    let stream = zipf_stream(n, m, 1.2, 7);
    let params = Params::new(2.0, 0.3, n, m).with_seed(7);
    let mut alg = SampleAndHold::standalone(&params);
    alg.process_stream(&stream);
    let report = alg.report();
    assert_eq!(report.epochs, m as u64);
    assert!(report.epochs > 0);
    assert!(report.state_changes >= 1);
    assert!(
        report.state_changes < report.epochs,
        "a write-frugal algorithm wrote on every update: {} of {}",
        report.state_changes,
        report.epochs
    );
}
