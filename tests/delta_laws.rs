//! Delta-checkpoint laws: a [`CheckpointChain`] built from `FSCD` deltas must be
//! **observably indistinguishable** from full checkpoints.
//!
//! Mirroring `tests/snapshot_laws.rs`, every production `StreamAlgorithm` is driven
//! through a chain of random checkpoint positions on random-seed streams, and the
//! core laws are pinned at every link:
//!
//! * **reconstruction** — `base + deltas` equals the full checkpoint byte-for-byte,
//!   so `restore(chain)` is observably identical (answers, [`StateReport`], wear
//!   table) to restoring the full checkpoint;
//! * **compaction** — `compact(chain)` keeps the tip bytes, epoch, and restored
//!   instance identical;
//! * **time-travel** — `restore_at(e)` equals a twin run truncated at epoch `e`,
//!   for every retained epoch, and between-epoch queries resolve to the nearest
//!   at-or-before checkpoint;
//! * **size** — a delta never exceeds the full checkpoint plus the fixed `FSCD`
//!   format overhead, and for fixed-size sketches (CountMin, AMS) delta bytes grow
//!   *sublinearly* with stream length (the persistence face of the paper's thesis);
//! * **robustness** — every truncation, header corruption, wrong-base, foreign
//!   algorithm, and out-of-order append surfaces a typed [`SnapshotError`], never a
//!   panic.

use few_state_changes::algorithms::sparse_recovery::FewStateSparseRecovery;
use few_state_changes::algorithms::{
    EntropyFewState, FewStateHeavyHitters, FpEstimator, FpSmallEstimator, FullSampleAndHold,
    Params, SampleAndHold,
};
use few_state_changes::baselines::{
    AmsSketch, CountMin, CountSketch, ExactCounting, MisraGries, PickAndDrop, SampleAndHoldClassic,
    SpaceSaving,
};
use few_state_changes::state::delta::DELTA_OVERHEAD;
use few_state_changes::state::{
    apply_delta, peek_delta, BaseRef, CheckpointChain, EntropyEstimator, FrequencyEstimator,
    MomentEstimator, Snapshot, SnapshotError, StateTracker, StreamAlgorithm, SupportRecovery,
    TrackerKind,
};
use few_state_changes::streamgen::zipf::zipf_stream;

use proptest::prelude::*;

/// Drives `make`'s instance through checkpoints at each position in `cuts`,
/// chaining deltas produced by [`Snapshot::checkpoint_delta`], and asserts the
/// reconstruction, compaction, time-travel, and size laws.
fn check_delta_laws<A: StreamAlgorithm + Snapshot>(
    make: impl Fn(&StateTracker) -> A,
    digest: impl Fn(&A) -> Vec<u64>,
    stream: &[u64],
    cuts: &[usize],
) {
    // Sorted, deduplicated positions within the stream.
    let mut cuts: Vec<usize> = cuts.iter().map(|&c| c.min(stream.len())).collect();
    cuts.sort_unstable();
    cuts.dedup();

    let tracker = StateTracker::with_address_tracking();
    let mut subject = make(&tracker);
    let name = subject.name().to_string();
    let id_len = subject.snapshot_id().len();

    let mut chain: Option<CheckpointChain> = None;
    let mut base: Option<BaseRef> = None;
    // (epoch, full checkpoint, stream position) per link, for the time-travel law.
    let mut history: Vec<(u64, Vec<u8>, usize)> = Vec::new();
    let mut prev = 0usize;
    for &cut in &cuts {
        subject.process_batch(&stream[prev..cut]);
        prev = cut;
        let full = subject.checkpoint();
        let epoch = subject.report().epochs;
        match (chain.as_mut(), base.as_ref()) {
            (None, _) => {
                chain = Some(
                    CheckpointChain::new(full.clone(), epoch)
                        .unwrap_or_else(|e| panic!("{name}: chain base rejected: {e}")),
                );
            }
            (Some(c), Some(b)) => {
                let delta = subject
                    .checkpoint_delta(b)
                    .unwrap_or_else(|e| panic!("{name}: checkpoint_delta failed: {e}"));
                // Size law: the encoder picks the smaller of run-diff and embedded
                // payload, so a delta is bounded by full + format overhead + id.
                assert!(
                    delta.len() <= full.len() + DELTA_OVERHEAD + id_len,
                    "{name}: {}-byte delta for a {}-byte checkpoint",
                    delta.len(),
                    full.len()
                );
                let info =
                    peek_delta(&delta).unwrap_or_else(|e| panic!("{name}: peek_delta failed: {e}"));
                assert_eq!(info.base_epoch, b.epoch(), "{name}: delta base epoch");
                assert_eq!(info.epoch, epoch, "{name}: delta target epoch");
                c.append_delta(delta)
                    .unwrap_or_else(|e| panic!("{name}: append_delta failed: {e}"));
            }
            _ => unreachable!(),
        }
        let c = chain.as_ref().expect("chain exists");
        // Reconstruction law, at every link: base + deltas ≡ full, byte-for-byte.
        assert_eq!(
            c.tip_bytes(),
            &full[..],
            "{name}: chain tip diverged from the full checkpoint at epoch {epoch}"
        );
        assert_eq!(c.tip_epoch(), epoch, "{name}: tip epoch");
        base = Some(BaseRef::new(full.clone(), epoch));
        history.push((epoch, full, cut));
    }
    let Some(mut chain) = chain else {
        return; // no cut positions — nothing to pin
    };

    // Pin the subject's observable state *before* any digest: answer digests
    // legitimately charge tracked reads on some summaries.
    let final_report = subject.report();
    let final_wear = subject.tracker().address_writes();

    // restore(base + deltas) ≡ restore(full checkpoint): observable identity.
    let restored: A = chain
        .restore()
        .unwrap_or_else(|e| panic!("{name}: chain restore failed: {e}"));
    assert_eq!(restored.report(), final_report, "{name}: report diverged");
    assert_eq!(
        restored.tracker().address_writes(),
        final_wear,
        "{name}: wear table diverged"
    );
    assert_eq!(
        restored.checkpoint(),
        chain.tip_bytes(),
        "{name}: re-checkpoint is not byte-identical to the chain tip"
    );
    assert_eq!(
        digest(&restored),
        digest(&subject),
        "{name}: answers diverged"
    );

    // Time-travel law: every retained epoch equals a twin truncated there.
    for (epoch, full, cut) in &history {
        let (bytes, at) = chain
            .bytes_at(*epoch)
            .unwrap_or_else(|e| panic!("{name}: bytes_at({epoch}) failed: {e}"));
        assert_eq!(at, *epoch, "{name}: bytes_at landed on the wrong epoch");
        assert_eq!(&bytes, full, "{name}: time-travelled bytes diverged");

        let (at_alg, at_epoch): (A, u64) = chain
            .restore_at(*epoch)
            .unwrap_or_else(|e| panic!("{name}: restore_at({epoch}) failed: {e}"));
        assert_eq!(at_epoch, *epoch);
        let t = StateTracker::with_address_tracking();
        let mut twin = make(&t);
        twin.process_batch(&stream[..*cut]);
        assert_eq!(
            at_alg.report(),
            twin.report(),
            "{name}: restore_at({epoch}) diverged from the truncated twin's report"
        );
        assert_eq!(
            at_alg.tracker().address_writes(),
            twin.tracker().address_writes(),
            "{name}: restore_at({epoch}) diverged from the truncated twin's wear"
        );
        assert_eq!(
            digest(&at_alg),
            digest(&twin),
            "{name}: restore_at({epoch}) diverged from the truncated twin's answers"
        );
    }

    // Between-epoch queries resolve to the nearest at-or-before checkpoint…
    if let [.., (prev_epoch, prev_full, _), (last_epoch, _, _)] = &history[..] {
        if last_epoch > &(prev_epoch + 1) {
            let (bytes, at) = chain
                .bytes_at(last_epoch - 1)
                .unwrap_or_else(|e| panic!("{name}: between-epoch bytes_at failed: {e}"));
            assert_eq!(at, *prev_epoch, "{name}: nearest-at-or-before epoch");
            assert_eq!(&bytes, prev_full, "{name}: nearest-at-or-before bytes");
        }
    }
    // …and epochs before the base are a typed MissingBase, not a panic.
    let first_epoch = history[0].0;
    if first_epoch > 0 {
        assert!(
            matches!(
                chain.bytes_at(first_epoch - 1),
                Err(SnapshotError::MissingBase)
            ),
            "{name}: pre-base epoch must be MissingBase"
        );
    }

    // compact(chain) ≡ chain: same tip bytes, epoch, and restored instance.
    let tip = chain.tip_bytes().to_vec();
    let tip_epoch = chain.tip_epoch();
    chain.compact();
    assert!(chain.is_empty(), "{name}: compaction must clear the deltas");
    assert_eq!(
        chain.tip_bytes(),
        &tip[..],
        "{name}: compaction moved the tip"
    );
    assert_eq!(
        chain.tip_epoch(),
        tip_epoch,
        "{name}: compaction moved the epoch"
    );
    let recompacted: A = chain
        .restore()
        .unwrap_or_else(|e| panic!("{name}: post-compaction restore failed: {e}"));
    assert_eq!(
        recompacted.report(),
        final_report,
        "{name}: post-compaction restore diverged"
    );
}

fn frequency_digest<A: FrequencyEstimator>(alg: &A) -> Vec<u64> {
    let mut items = alg.tracked_items();
    items.sort_unstable();
    let mut out = items.clone();
    out.extend(items.iter().map(|&i| alg.estimate(i).to_bits()));
    out.extend((0u64..64).map(|i| alg.estimate(i).to_bits()));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Baseline sketches and summaries obey the delta laws at arbitrary chains of
    /// checkpoint positions.
    #[test]
    fn baseline_deltas_obey_the_chain_laws(
        seed in 0u64..1_000,
        len in 8usize..400,
        cuts in proptest::collection::vec(0usize..400, 2..5),
    ) {
        let stream = zipf_stream(256, len, 1.1, seed);

        check_delta_laws(
            |t| AmsSketch::with_tracker(t, 3, 16, seed),
            |a| vec![a.estimate_moment().to_bits()],
            &stream,
            &cuts,
        );
        check_delta_laws(
            |t| CountMin::with_tracker(t, 64, 4, seed),
            frequency_digest,
            &stream,
            &cuts,
        );
        check_delta_laws(
            |t| CountSketch::with_tracker(t, 64, 3, seed),
            frequency_digest,
            &stream,
            &cuts,
        );
        check_delta_laws(|t| MisraGries::with_tracker(t, 8), frequency_digest, &stream, &cuts);
        check_delta_laws(|t| SpaceSaving::with_tracker(t, 8), frequency_digest, &stream, &cuts);
        check_delta_laws(
            |t| ExactCounting::with_tracker(t, 2.0),
            |a| {
                let mut d = frequency_digest(a);
                d.push(a.estimate_moment().to_bits());
                d.push(a.estimate_entropy().to_bits());
                d.extend(a.recovered_support());
                d
            },
            &stream,
            &cuts,
        );
        check_delta_laws(
            |t| SampleAndHoldClassic::with_tracker(t, 0.08, seed),
            frequency_digest,
            &stream,
            &cuts,
        );
        check_delta_laws(
            |t| PickAndDrop::with_tracker(t, 16, 3, seed),
            |a| a.candidates().into_iter().flat_map(|(i, c)| [i, c]).collect(),
            &stream,
            &cuts,
        );
        check_delta_laws(
            |t| FewStateSparseRecovery::with_tracker(48, t),
            |a| {
                let mut d = a.recovered_support();
                d.push(a.overflowed() as u64);
                d
            },
            &stream,
            &cuts,
        );
    }

    /// The paper's algorithms — including the held-counter tables whose Morris
    /// registers are allocated mid-stream — obey the delta laws.
    #[test]
    fn fsc_deltas_obey_the_chain_laws(
        seed in 0u64..1_000,
        len in 64usize..384,
        cuts in proptest::collection::vec(0usize..384, 2..5),
    ) {
        let n = 256;
        let stream = zipf_stream(n, len, 1.2, seed);
        let tracked = TrackerKind::FullAddressTracked;
        let params = Params::new(2.0, 0.3, n, stream.len())
            .with_seed(seed)
            .with_tracker(tracked);

        check_delta_laws(
            |_| SampleAndHold::standalone(&params),
            frequency_digest,
            &stream,
            &cuts,
        );
        check_delta_laws(
            |_| FullSampleAndHold::standalone(&params),
            frequency_digest,
            &stream,
            &cuts,
        );
        check_delta_laws(
            |_| FewStateHeavyHitters::new(params.clone()),
            |a| {
                let mut d = frequency_digest(a);
                d.push(a.rough_fp().to_bits());
                d
            },
            &stream,
            &cuts,
        );
        check_delta_laws(
            |_| FpEstimator::new(params.clone()),
            |a| vec![a.estimate_moment().to_bits()],
            &stream,
            &cuts,
        );
        check_delta_laws(
            |t| FpSmallEstimator::with_tracker(0.5, 0.4, seed, t),
            |a| vec![a.estimate_moment().to_bits()],
            &stream,
            &cuts,
        );
        check_delta_laws(
            |_| EntropyFewState::new(0.3, n, stream.len(), seed),
            |a| vec![a.estimate_entropy().to_bits()],
            &stream,
            &cuts,
        );
    }
}

/// Degenerate chains: a checkpoint before anything, duplicate positions, and a
/// chain whose every link sits at the same epoch must all hold the laws.
#[test]
fn delta_laws_handle_degenerate_positions() {
    check_delta_laws(
        |t| CountMin::with_tracker(t, 16, 2, 1),
        frequency_digest,
        &[],
        &[0, 0],
    );
    check_delta_laws(
        |t| MisraGries::with_tracker(t, 4),
        frequency_digest,
        &[7, 7, 8],
        &[0, 1, 3],
    );
    check_delta_laws(
        |t| AmsSketch::with_tracker(t, 2, 8, 2),
        |a| vec![a.estimate_moment().to_bits()],
        &[5, 6, 7],
        &[3, 3, 3],
    );
}

/// Fixed-size sketches persist sublinearly: doubling (and quadrupling) the stream
/// length must not proportionally grow the delta, because the set of touched
/// counters saturates — the CountMin/AMS face of "persistence cost tracks changes,
/// not stream length".
#[test]
fn count_min_and_ams_deltas_grow_sublinearly_with_stream_length() {
    fn last_delta_bytes<A: StreamAlgorithm + Snapshot>(
        make: impl Fn(&StateTracker) -> A,
        len: usize,
    ) -> (usize, usize) {
        let stream = zipf_stream(256, len, 1.1, 7);
        let t = StateTracker::with_address_tracking();
        let mut alg = make(&t);
        alg.process_batch(&stream[..len / 2]);
        let base = BaseRef::capture(&alg);
        alg.process_batch(&stream[len / 2..]);
        let full = alg.checkpoint();
        let delta = alg.checkpoint_delta(&base).expect("delta");
        (delta.len(), full.len())
    }

    // CountMin with a wide sketch: the universe (256) touches at most a quarter of
    // the 1024-wide rows, so deltas stay well under the full checkpoint and stop
    // growing once the hot set saturates.
    let cm = |len| last_delta_bytes(|t| CountMin::with_tracker(t, 1 << 10, 4, 7), len);
    let (d1, f1) = cm(1_000);
    let (d2, _) = cm(2_000);
    let (d4, f4) = cm(4_000);
    assert!(
        d1 < f1 / 2 && d4 < f4 / 2,
        "CountMin deltas must stay below half the full checkpoint ({d1}/{f1}, {d4}/{f4})"
    );
    assert!(
        d4 < 2 * d1 && d2 < 2 * d1,
        "CountMin delta must grow sublinearly: {d1} -> {d2} -> {d4} bytes for 1k/2k/4k updates"
    );

    // AMS is O(1)-sized: the delta is bounded by the (constant) sketch size, so it
    // cannot grow with the stream at all.
    let ams = |len| last_delta_bytes(|t| AmsSketch::with_tracker(t, 5, 48, 7), len);
    let (a1, af1) = ams(1_000);
    let (a4, af4) = ams(4_000);
    assert!(
        a1 <= af1 + DELTA_OVERHEAD + "ams".len() && a4 <= af4 + DELTA_OVERHEAD + "ams".len(),
        "AMS delta must be bounded by its constant sketch size"
    );
    assert!(
        a4 < 2 * a1,
        "AMS delta must not scale with stream length: {a1} -> {a4} bytes"
    );
}

/// Every truncation of a real `FSCD` delta, and every header corruption, must
/// surface a typed error — never a panic (mirrors the `FSCS` corruption suite).
#[test]
fn corrupt_deltas_error_instead_of_panicking() {
    let t = StateTracker::with_address_tracking();
    let mut alg = CountMin::with_tracker(&t, 64, 4, 9);
    let stream = zipf_stream(64, 200, 1.1, 3);
    alg.process_batch(&stream[..100]);
    let base = BaseRef::capture(&alg);
    alg.process_batch(&stream[100..]);
    let full = alg.checkpoint();
    let delta = alg.checkpoint_delta(&base).expect("delta");
    assert_eq!(apply_delta(base.bytes(), &delta).expect("apply"), full);

    // Every truncation point is a typed error on apply; peeking succeeds only
    // once the complete header is present, and then reports the true metadata.
    for cut in 0..delta.len() {
        assert!(
            apply_delta(base.bytes(), &delta[..cut]).is_err(),
            "truncation at {cut} unexpectedly applied"
        );
        if let Ok(info) = peek_delta(&delta[..cut]) {
            assert_eq!(info.base_epoch, base.epoch());
            assert_eq!(info.epoch, alg.report().epochs);
            assert_eq!(info.new_len, full.len());
        }
    }

    // Flipped magic (an FSCS full checkpoint is also not an FSCD delta).
    let mut bad = delta.clone();
    bad[0] ^= 0xFF;
    assert!(matches!(
        apply_delta(base.bytes(), &bad),
        Err(SnapshotError::BadMagic)
    ));
    assert!(matches!(
        apply_delta(base.bytes(), &full),
        Err(SnapshotError::BadMagic)
    ));

    // Future format version.
    let mut future = delta.clone();
    future[4] = 0xFE;
    assert!(matches!(
        apply_delta(base.bytes(), &future),
        Err(SnapshotError::UnsupportedVersion(_))
    ));

    // Trailing garbage.
    let mut long = delta.clone();
    long.push(0);
    assert!(matches!(
        apply_delta(base.bytes(), &long),
        Err(SnapshotError::TrailingBytes(_))
    ));

    // Applying against the wrong base — same algorithm, different contents — is a
    // typed MissingBase (checksum mismatch), not silent corruption.
    let t2 = StateTracker::with_address_tracking();
    let mut other = CountMin::with_tracker(&t2, 64, 4, 9);
    other.process_batch(&zipf_stream(64, 100, 1.1, 77));
    assert!(matches!(
        apply_delta(&other.checkpoint(), &delta),
        Err(SnapshotError::MissingBase)
    ));

    // A foreign algorithm's base is a typed WrongAlgorithm.
    let t3 = StateTracker::with_address_tracking();
    let mut foreign = CountSketch::with_tracker(&t3, 64, 3, 9);
    foreign.process_batch(&stream[..100]);
    assert!(matches!(
        apply_delta(&foreign.checkpoint(), &delta),
        Err(SnapshotError::WrongAlgorithm { .. })
    ));
}

/// Chain-level ordering errors: a delta whose base epoch is not the chain tip is a
/// typed `OutOfOrderDelta`, and foreign deltas are rejected by algorithm id.
#[test]
fn chains_reject_out_of_order_and_foreign_deltas() {
    let t = StateTracker::with_address_tracking();
    let mut alg = CountMin::with_tracker(&t, 64, 4, 9);
    let stream = zipf_stream(64, 300, 1.1, 3);

    alg.process_batch(&stream[..100]);
    let mut chain = CheckpointChain::new(alg.checkpoint(), alg.report().epochs).expect("base");
    let base_100 = BaseRef::capture(&alg);

    alg.process_batch(&stream[100..200]);
    let delta_100_200 = alg.checkpoint_delta(&base_100).expect("delta");
    chain.append_delta(delta_100_200).expect("in-order append");

    // A second delta built off the *old* base (epoch 100) no longer matches the
    // chain tip (epoch 200): typed OutOfOrderDelta reporting both epochs.
    alg.process_batch(&stream[200..]);
    let stale = alg.checkpoint_delta(&base_100).expect("stale delta");
    match chain.append_delta(stale) {
        Err(SnapshotError::OutOfOrderDelta { expected, found }) => {
            assert_eq!(expected, 200);
            assert_eq!(found, 100);
        }
        other => panic!("expected OutOfOrderDelta, got {other:?}"),
    }

    // A foreign algorithm's delta is rejected by id before any bytes are applied.
    let t2 = StateTracker::with_address_tracking();
    let mut foreign = CountSketch::with_tracker(&t2, 64, 3, 9);
    foreign.process_batch(&stream[..100]);
    let foreign_base = BaseRef::capture(&foreign);
    foreign.process_batch(&stream[100..200]);
    let foreign_delta = foreign.checkpoint_delta(&foreign_base).expect("delta");
    assert!(matches!(
        chain.append_delta(foreign_delta),
        Err(SnapshotError::WrongAlgorithm { .. })
    ));
}
