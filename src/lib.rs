//! # few-state-changes — umbrella crate
//!
//! Re-exports the full public surface of the workspace implementing
//! *Streaming Algorithms with Few State Changes* (Jayaram, Woodruff, Zhou; PODS 2024):
//!
//! * [`state`] — state-change accounting substrate and NVM cost model (`fsc-state`).
//! * [`counters`] — Morris counters, hash families, p-stable variates (`fsc-counters`).
//! * [`streamgen`] — synthetic workloads and exact ground truth (`fsc-streamgen`).
//! * [`baselines`] — classic write-heavy streaming algorithms (`fsc-baselines`).
//! * [`algorithms`] — the paper's write-frugal algorithms (`fsc`).
//! * [`engine`] — the checkpointable, sharded serving engine and config-driven
//!   workload scenarios (`fsc-engine`).
//!
//! See `examples/quickstart.rs` for a five-minute tour,
//! `examples/checkpoint_failover.rs` for the engine's crash-recovery walkthrough,
//! and `DESIGN.md` for the system inventory and experiment index.

pub use fsc as algorithms;
pub use fsc_baselines as baselines;
pub use fsc_counters as counters;
pub use fsc_engine as engine;
pub use fsc_state as state;
pub use fsc_streamgen as streamgen;

/// Crate version of the umbrella package.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
