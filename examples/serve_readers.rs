//! Serving-view walkthrough: reader threads answer point queries from a cached
//! merged view while the engine keeps ingesting — readers never rebuild, the
//! writer never stops, and at quiescence the cached answers equal a fresh merge.
//!
//! This is the serving payoff of the paper's object: a summary whose state
//! changes are scarce is also a summary whose *merged serving view* goes stale
//! rarely, so almost every query is an in-memory read of an already-built
//! snapshot rather than a restore-and-merge over all shards.
//!
//! Run with: `cargo run --release --example serve_readers`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use few_state_changes::baselines::CountMin;
use few_state_changes::engine::{DynEngine, Engine, EngineConfig, Routing};
use few_state_changes::state::{Query, StateTracker, TrackerKind};
use few_state_changes::streamgen::zipf::zipf_stream;

fn main() {
    let n = 1 << 12;
    let m = 16 * n;
    let stream = zipf_stream(n, m, 1.2, 41);

    let config = EngineConfig {
        shards: 4,
        routing: Routing::RoundRobin,
        tracker: TrackerKind::Full,
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(config, |_| {
        CountMin::with_tracker(&StateTracker::of_kind(config.tracker), 1 << 10, 4, 2024)
    });
    engine.refresh_view().expect("prime the serving view");

    // The serve handle is the reader-side face of the engine: an `Arc` that
    // answers from the last published snapshot without touching the shards.
    // Readers hold it across the writer's entire ingest run.
    let handle = engine.serve_handle();
    let stop = Arc::new(AtomicBool::new(false));
    let served = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        for _ in 0..2 {
            let handle = Arc::clone(&handle);
            let stop = Arc::clone(&stop);
            let served = Arc::clone(&served);
            scope.spawn(move || {
                let mut at = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    if handle.serve(&Query::Point(at % 64)).is_some() {
                        served.fetch_add(1, Ordering::Relaxed);
                    }
                    at += 1;
                }
                // One guaranteed read after the writer finished: by now the
                // final view is published, so this always answers.
                if handle.serve(&Query::Point(at % 64)).is_some() {
                    served.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        // The writer ingests in batches and republishes the view after each —
        // `refresh_view` is a no-op whenever the generation clock is unchanged,
        // so rebuild work tracks state changes, not batches.
        for chunk in stream.chunks(2_048) {
            engine.ingest(chunk);
            engine.refresh_view().expect("republish the serving view");
        }
        stop.store(true, Ordering::Relaxed);
    });

    println!(
        "2 readers served {} cached queries while the writer ingested {} updates",
        served.load(Ordering::Relaxed),
        engine.ingested(),
    );
    println!(
        "view rebuilds: {} (generation clock: {})",
        engine.view_rebuilds(),
        engine.generation(),
    );

    // Quiescence: with the writer stopped, the cached view and a from-scratch
    // merged summary must answer identically — staleness only ever meant
    // "not yet republished", never "wrong".
    let fresh = engine.merged_summary().expect("fresh merge");
    let mut checked = 0usize;
    for item in 0..256u64 {
        let query = Query::Point(item);
        let cached = handle.serve(&query).expect("published view answers");
        assert_eq!(
            cached,
            few_state_changes::state::Queryable::query(&fresh, &query),
            "cached answer diverged from a fresh merge at quiescence"
        );
        checked += 1;
    }
    println!("quiescence: {checked} cached point answers equal a fresh restore+merge");
}
