//! Elephant-flow detection on a synthetic packet trace — the workload the paper's
//! introduction motivates (network traffic monitoring, iceberg queries).
//!
//! A router line card wants to know which flows carry the bulk of the traffic, but its
//! per-packet budget for *writing* to (slow, wear-limited) memory is tiny.  We compare
//! the classic SpaceSaving summary with the paper's write-frugal heavy hitter
//! algorithm on the same trace.
//!
//! Run with: `cargo run --release --example network_monitoring`

use few_state_changes::algorithms::{FewStateHeavyHitters, Params};
use few_state_changes::baselines::SpaceSaving;
use few_state_changes::state::{FrequencyEstimator, StreamAlgorithm};
use few_state_changes::streamgen::ground_truth::precision_recall;
use few_state_changes::streamgen::netflow::{flow_trace, FlowTraceSpec};
use few_state_changes::streamgen::FrequencyVector;

fn main() {
    let spec = FlowTraceSpec {
        elephants: 12,
        mice: 30_000,
        elephant_min_packets: 2_000,
        ..FlowTraceSpec::default()
    };
    let trace = flow_trace(&spec);
    let truth = FrequencyVector::from_stream(&trace.packets);
    let eps = 0.02;
    let threshold = eps * truth.lp(1.0);
    let exact: Vec<u64> = truth
        .heavy_hitters(1.0, eps)
        .into_iter()
        .map(|(i, _)| i)
        .collect();
    println!(
        "trace: {} packets, {} flows, {} true elephant flows above {:.0} packets\n",
        trace.packets.len(),
        trace.flows,
        exact.len(),
        threshold
    );

    let mut space_saving = SpaceSaving::for_epsilon(eps / 2.0);
    space_saving.process_stream(&trace.packets);
    let ss_reported: Vec<u64> = space_saving
        .heavy_hitters(threshold)
        .into_iter()
        .map(|(i, _)| i)
        .collect();
    summarize("SpaceSaving [MAA05]", &space_saving, &ss_reported, &exact);

    let mut ours = FewStateHeavyHitters::new(
        Params::new(1.0, eps, trace.flows, trace.packets.len()).with_seed(7),
    );
    ours.process_stream(&trace.packets);
    let our_reported: Vec<u64> = ours
        .heavy_hitters_with_norm(truth.lp(1.0))
        .into_iter()
        .map(|(i, _)| i)
        .collect();
    summarize(
        "FewStateHeavyHitters (this paper)",
        &ours,
        &our_reported,
        &exact,
    );
}

fn summarize<A: StreamAlgorithm>(name: &str, alg: &A, reported: &[u64], exact: &[u64]) {
    let (precision, recall) = precision_recall(reported, exact);
    let report = alg.report();
    println!("{name}");
    println!("  reported elephants : {}", reported.len());
    println!("  precision / recall : {precision:.2} / {recall:.2}");
    println!(
        "  state changes      : {} of {} packets ({:.1}% of packets wrote to memory)",
        report.state_changes,
        report.epochs,
        100.0 * report.change_fraction()
    );
    println!("  space              : {} words\n", report.words_peak);
}
