//! Fault-drill walkthrough: the crash → recover → replay loop of the network
//! front-end, end to end on a real TCP server.
//!
//! The sequence: a server ingests sequence-numbered batches over the wire and
//! checkpoints partway; a `Crash` frame kills it holding volatile batches (no
//! shutdown sweep — exactly what `kill -9` would do); a restart on the same
//! data dir recovers the newest durable prefix and answers *exactly* like a
//! twin engine that only ever saw that prefix; then the client replays the
//! lost suffix — the duplicate is refused, the rest applies — and the served
//! answers converge exactly to the full-stream twin. The same loop, with
//! seeded torn writes and corrupt chain tips layered in, is what the
//! `fig_serve_net` fault matrix drills in CI.
//!
//! Run with: `cargo run --release --example fault_drill`

use fsc_bench::registry::serve_factory;
use fsc_serve::faults::splitmix64;
use fsc_serve::{Client, ClientConfig, FaultPlan, Server, ServerConfig};

use few_state_changes::engine::{DynEngine, EngineConfig};
use few_state_changes::state::{Answer, Query};

const ALGORITHM: &str = "count_min";
const SHARDS: u32 = 2;
const BATCHES: usize = 6;
const DURABLE: usize = 4; // batches checkpointed before the crash
const BATCH: usize = 256;

/// Deterministic drill traffic: same seed on the wire and in the twins.
fn batches() -> Vec<Vec<u64>> {
    let mut rng = 0x000D_2111_u64;
    (0..BATCHES)
        .map(|_| {
            (0..BATCH)
                .map(|_| splitmix64(&mut rng) % (1 << 10))
                .collect()
        })
        .collect()
}

/// Point mass across the hot end of the universe, plus the second moment.
fn probes() -> Vec<Query> {
    let mut out: Vec<Query> = (0..24).map(Query::Point).collect();
    out.push(Query::Moment);
    out
}

/// The local twin: same registry constructor table, same config the server
/// uses for the tenant — so equality below is byte-level, not approximate.
fn twin_answers(prefix: &[Vec<u64>]) -> Vec<Answer> {
    let config = EngineConfig {
        shards: SHARDS as usize,
        ..EngineConfig::default()
    };
    let mut engine: Box<dyn DynEngine> =
        serve_factory()(ALGORITHM, config).expect("registry builds count_min");
    for batch in prefix {
        engine.ingest(batch);
    }
    probes()
        .iter()
        .map(|q| engine.query_fresh(q).expect("twin answers probes"))
        .collect()
}

fn served_answers(client: &mut Client) -> Vec<Answer> {
    probes()
        .iter()
        .map(|q| client.query("drill", *q).expect("served probe"))
        .collect()
}

fn main() {
    let dir = std::env::temp_dir().join(format!("fsc-fault-drill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let batches = batches();

    // --- ingest over the wire, checkpoint partway, then crash ---------------------
    // `with_crash_frame` arms the drill-only `Crash` request; a production server
    // leaves it disarmed and this step is a plain `kill -9`.
    let config = ServerConfig::new(&dir).with_faults(FaultPlan::none().with_crash_frame());
    let (server, _) = Server::start("127.0.0.1:0", config, serve_factory()).unwrap();
    let mut client = Client::new(server.addr(), ClientConfig::default());
    client.create_tenant("drill", ALGORITHM, SHARDS).unwrap();
    for (seq, batch) in batches.iter().enumerate().take(DURABLE) {
        assert!(client.ingest("drill", seq as u64, batch).unwrap());
        if seq + 1 == DURABLE {
            client.checkpoint("drill").unwrap(); // newest durable delta: seq 0..DURABLE
        }
    }
    for (seq, batch) in batches.iter().enumerate().skip(DURABLE) {
        assert!(client.ingest("drill", seq as u64, batch).unwrap());
    }
    println!(
        "ingested {BATCHES} batches of {BATCH}; {DURABLE} durable (checkpointed), \
         {} volatile — crashing now",
        BATCHES - DURABLE
    );
    client.crash(); // no shutdown sweep: in-memory state is gone
    server.join();

    // --- restart on the same data dir: typed recovery of the durable prefix -------
    let (server, report) =
        Server::start("127.0.0.1:0", ServerConfig::new(&dir), serve_factory()).unwrap();
    println!("recovery: {report}");
    assert_eq!(report.recovered(), 1);
    assert!(
        report.is_clean(),
        "a crash loses the volatile suffix but damages nothing on disk"
    );

    // --- the recovered server answers exactly like the truncated twin -------------
    let mut client = Client::new(server.addr(), ClientConfig::default());
    assert_eq!(
        served_answers(&mut client),
        twin_answers(&batches[..DURABLE])
    );
    println!("recovered answers == {DURABLE}-batch twin: exact");

    // --- replay: the duplicate is refused, the suffix applies, answers converge ---
    let duplicate = client
        .ingest("drill", DURABLE as u64 - 1, &batches[DURABLE - 1])
        .unwrap();
    assert!(
        !duplicate,
        "a durable batch re-sent after recovery must not re-apply"
    );
    for (seq, batch) in batches.iter().enumerate().skip(DURABLE) {
        assert!(client.ingest("drill", seq as u64, batch).unwrap());
    }
    assert_eq!(served_answers(&mut client), twin_answers(&batches));
    println!(
        "replayed the {} lost batches (duplicate refused): answers == full twin, exact",
        BATCHES - DURABLE
    );

    client.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
