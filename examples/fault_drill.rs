//! Fault-drill walkthrough: crash → recover on a real TCP server, in both
//! durability modes, end to end.
//!
//! **Section A — the journal closes the crash gap.**  A server in the default
//! relaxed mode ingests sequence-numbered batches, checkpoints partway, and is
//! killed by a `Crash` frame holding batches that were acked but never
//! checkpointed (no shutdown sweep — exactly what `kill -9` would do).  A
//! restart on the same data dir restores the checkpointed prefix from the
//! delta chain, replays the acked suffix out of the write-ahead journal, and
//! answers *exactly* like a twin engine that saw every acked batch — no
//! client-side replay at all, duplicate re-sends refused.
//!
//! **Section B — durable mode survives the ingest path dying mid-write.**  A
//! server in `AckAfterDurable` mode (journal fsynced before every ack) has a
//! seeded fault kill it *inside* the write path of one ingest — after some
//! batches were acked, before the victim is.  The restart holds exactly the
//! acked prefix; the client re-sends from its own cursor and converges.
//!
//! The same loops, with torn journal appends, corrupt records, and simulated
//! power loss layered in, are what `fig_recovery` and the `recovery_laws`
//! suite drill in CI.
//!
//! Run with: `cargo run --release --example fault_drill`

use fsc_bench::registry::serve_factory;
use fsc_serve::faults::splitmix64;
use fsc_serve::{Client, ClientConfig, CrashPoint, Durability, FaultPlan, Server, ServerConfig};

use few_state_changes::engine::{DynEngine, EngineConfig};
use few_state_changes::state::{Answer, Query};

const ALGORITHM: &str = "count_min";
const SHARDS: u32 = 2;
const BATCHES: usize = 6;
const CHECKPOINTED: usize = 4; // batches checkpointed into the chain before the crash
const BATCH: usize = 256;

/// Deterministic drill traffic: same seed on the wire and in the twins.
fn batches() -> Vec<Vec<u64>> {
    let mut rng = 0x000D_2111_u64;
    (0..BATCHES)
        .map(|_| {
            (0..BATCH)
                .map(|_| splitmix64(&mut rng) % (1 << 10))
                .collect()
        })
        .collect()
}

/// Point mass across the hot end of the universe, plus the second moment.
fn probes() -> Vec<Query> {
    let mut out: Vec<Query> = (0..24).map(Query::Point).collect();
    out.push(Query::Moment);
    out
}

/// The local twin: same registry constructor table, same config the server
/// uses for the tenant — so equality below is byte-level, not approximate.
fn twin_answers(prefix: &[Vec<u64>]) -> Vec<Answer> {
    let config = EngineConfig {
        shards: SHARDS as usize,
        ..EngineConfig::default()
    };
    let mut engine: Box<dyn DynEngine> =
        serve_factory()(ALGORITHM, config).expect("registry builds count_min");
    for batch in prefix {
        engine.ingest(batch);
    }
    probes()
        .iter()
        .map(|q| engine.query_fresh(q).expect("twin answers probes"))
        .collect()
}

fn served_answers(client: &mut Client) -> Vec<Answer> {
    probes()
        .iter()
        .map(|q| client.query("drill", *q).expect("served probe"))
        .collect()
}

/// Section A: process kill in the relaxed default — chain prefix + journal
/// suffix recover every acked batch, nothing to replay.
fn drill_process_kill(batches: &[Vec<u64>]) {
    let dir = std::env::temp_dir().join(format!("fsc-fault-drill-kill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // `with_crash_frame` arms the drill-only `Crash` request; a production
    // server leaves it disarmed and this step is a plain `kill -9`.
    let config = ServerConfig::new(&dir).with_faults(FaultPlan::none().with_crash_frame());
    let (server, _) = Server::start("127.0.0.1:0", config, serve_factory()).unwrap();
    let mut client = Client::new(server.addr(), ClientConfig::default());
    client.create_tenant("drill", ALGORITHM, SHARDS).unwrap();
    for (seq, batch) in batches.iter().enumerate() {
        assert!(client.ingest("drill", seq as u64, batch).unwrap());
        if seq + 1 == CHECKPOINTED {
            client.checkpoint("drill").unwrap(); // newest chain delta: seq 0..CHECKPOINTED
        }
    }
    println!(
        "[A] ingested {BATCHES} batches of {BATCH}; {CHECKPOINTED} checkpointed, \
         {} journal-only — crashing now",
        BATCHES - CHECKPOINTED
    );
    client.crash(); // no shutdown sweep: in-memory state is gone
    server.join();

    // Restart on the same data dir: chain prefix + journal replay, typed.
    let (server, report) =
        Server::start("127.0.0.1:0", ServerConfig::new(&dir), serve_factory()).unwrap();
    println!("[A] recovery: {report}");
    assert_eq!(report.recovered(), 1);
    assert!(
        report.is_clean(),
        "a crash damages nothing on disk; the journal holds the acked suffix"
    );
    assert_eq!(
        report.total_wal_replayed(),
        (BATCHES - CHECKPOINTED) as u64,
        "every acked-but-uncheckpointed batch replays from the journal"
    );

    // The recovered server answers exactly like the FULL twin — the client
    // has nothing to replay.
    let mut client = Client::new(server.addr(), ClientConfig::default());
    assert_eq!(served_answers(&mut client), twin_answers(batches));
    println!("[A] recovered answers == full {BATCHES}-batch twin: exact, no client replay");

    // Re-sends of recovered batches are refused and change nothing.
    for (seq, batch) in batches.iter().enumerate().skip(CHECKPOINTED) {
        assert!(
            !client.ingest("drill", seq as u64, batch).unwrap(),
            "an acked batch re-sent after recovery must not re-apply"
        );
    }
    assert_eq!(served_answers(&mut client), twin_answers(batches));
    println!("[A] duplicate re-sends refused: answers unchanged");

    client.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Section B: durable mode, the ingest path dies mid-write.  The victim batch
/// was never acked; everything acked survives exactly.
fn drill_durable_crash_mid_ingest(batches: &[Vec<u64>]) {
    let dir = std::env::temp_dir().join(format!("fsc-fault-drill-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    const VICTIM: usize = 5; // the 5th ingest dies before its journal append

    let config = ServerConfig::new(&dir)
        .with_faults(
            FaultPlan::seeded(0xD12).with_crash_at(CrashPoint::BeforeJournal, VICTIM as u64),
        )
        .with_durability(Durability::AckAfterDurable);
    let (server, _) = Server::start("127.0.0.1:0", config, serve_factory()).unwrap();
    // No retries: the armed crash must surface as the failed ingest it is.
    // (Long timeout: a slow machine must not fake the death early.)
    let mut client = Client::new(
        server.addr(),
        ClientConfig {
            retries: 0,
            timeout: std::time::Duration::from_secs(10),
            ..ClientConfig::default()
        },
    );
    client.create_tenant("drill", ALGORITHM, SHARDS).unwrap();
    let mut acked = 0usize;
    for (seq, batch) in batches.iter().enumerate() {
        match client.ingest("drill", seq as u64, batch) {
            Ok(_) => acked += 1,
            Err(e) => {
                println!("[B] seq {seq} died inside the write path (as armed): {e}");
                break;
            }
        }
    }
    assert_eq!(acked, VICTIM - 1, "the victim ingest is never acked");
    server.join();

    // The restart holds exactly the acked prefix: every fsynced journal
    // record replays, the unacked victim never existed.
    let (server, report) =
        Server::start("127.0.0.1:0", ServerConfig::new(&dir), serve_factory()).unwrap();
    println!("[B] recovery: {report}");
    assert_eq!(report.recovered(), 1);
    assert!(report.is_clean(), "a crash between writes damages nothing");
    let mut client = Client::new(server.addr(), ClientConfig::default());
    assert_eq!(
        served_answers(&mut client),
        twin_answers(&batches[..acked]),
        "zero acked-write loss: the restart is the {acked}-batch twin"
    );
    println!("[B] recovered answers == acked {acked}-batch prefix twin: exact");

    // The client resumes from its own cursor; convergence is exact.
    for (seq, batch) in batches.iter().enumerate().skip(acked) {
        assert!(client.ingest("drill", seq as u64, batch).unwrap());
    }
    assert_eq!(served_answers(&mut client), twin_answers(batches));
    println!(
        "[B] re-sent the {} unacked batches: answers == full twin, exact",
        BATCHES - acked
    );

    client.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

fn main() {
    let batches = batches();
    drill_process_kill(&batches);
    drill_durable_crash_mid_ingest(&batches);
    println!("fault drill: both sections recovered exactly");
}
