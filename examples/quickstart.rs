//! Quickstart: estimate F_2 and find the L_2 heavy hitters of a skewed stream while
//! counting how often the summaries actually write to memory.
//!
//! Run with: `cargo run --release --example quickstart`

use few_state_changes::algorithms::{FewStateHeavyHitters, FpEstimator, Params};
use few_state_changes::state::{MomentEstimator, StreamAlgorithm};
use few_state_changes::streamgen::zipf::zipf_stream;
use few_state_changes::streamgen::FrequencyVector;

fn main() {
    // A Zipfian stream: 2^14 distinct items, 2^16 updates, exponent 1.2.
    let n = 1 << 14;
    let m = 4 * n;
    let stream = zipf_stream(n, m, 1.2, 42);
    let truth = FrequencyVector::from_stream(&stream);

    // --- F_2 moment estimation (Theorem 1.3) -------------------------------------
    let mut moment = FpEstimator::new(Params::new(2.0, 0.2, n, m));
    moment.process_stream(&stream);
    let estimate = moment.estimate_moment();
    let exact = truth.fp(2.0);
    println!("F2 estimate : {estimate:.3e}");
    println!("F2 exact    : {exact:.3e}");
    println!(
        "rel. error  : {:.2}%",
        100.0 * (estimate - exact).abs() / exact
    );
    let report = moment.report();
    println!(
        "state changes: {} over {} updates ({:.1}% of updates wrote to memory)\n",
        report.state_changes,
        report.epochs,
        100.0 * report.change_fraction()
    );

    // --- L_2 heavy hitters (Theorem 1.1) ------------------------------------------
    let eps = 0.1;
    let mut hh = FewStateHeavyHitters::new(Params::new(2.0, eps, n, m));
    hh.process_stream(&stream);
    println!("L2 heavy hitters (threshold {:.0}):", eps * truth.lp(2.0));
    for (item, estimate) in hh.heavy_hitters_with_norm(truth.lp(2.0)) {
        println!(
            "  item {item:>6}  estimated frequency {estimate:>9.1}  true {}",
            truth.frequency(item)
        );
    }
    let report = hh.report();
    println!(
        "heavy-hitter summary: {} state changes, {} words of space",
        report.state_changes, report.words_peak
    );
}
