//! Simulated NVM / NAND-flash cost of streaming summaries (the Section 1.1 motivation).
//!
//! Every algorithm processes the same stream; its measured reads and writes are then
//! priced under three memory technologies.  On write-asymmetric memory the write-frugal
//! summary pays far less energy, and its hottest cell stays far from the endurance
//! limit.
//!
//! Run with: `cargo run --release --example nvm_wear`

use few_state_changes::algorithms::{Params, SampleAndHold};
use few_state_changes::baselines::{CountMin, MisraGries};
use few_state_changes::state::{
    NvmCostModel, NvmReport, StateReport, StateTracker, StreamAlgorithm,
};
use few_state_changes::streamgen::zipf::zipf_stream;

fn main() {
    let n = 1 << 14;
    let m = 4 * n;
    let stream = zipf_stream(n, m, 1.1, 9);

    let mut reports: Vec<(String, StateReport)> = Vec::new();

    let mut mg = MisraGries::for_epsilon(0.05);
    mg.process_stream(&stream);
    reports.push((mg.name().to_string(), mg.report()));

    let mut cm = CountMin::for_error(0.05, 0.05, 1);
    cm.process_stream(&stream);
    reports.push((cm.name().to_string(), cm.report()));

    // Enable per-cell wear tracking for the paper's algorithm so the hottest-cell wear
    // can be reported.
    let tracker = StateTracker::with_address_tracking();
    let mut ours = SampleAndHold::new(&Params::new(2.0, 0.2, n, m), m, &tracker, 3);
    ours.process_stream(&stream);
    reports.push((format!("{} (this paper)", ours.name()), ours.report()));

    for model in [
        NvmCostModel::dram(),
        NvmCostModel::pcm(),
        NvmCostModel::nand_flash(),
    ] {
        println!(
            "=== {} (write costs {:.0}x a read, endurance {} writes/cell) ===",
            model.name,
            model.write_read_energy_ratio(),
            model.endurance_writes
        );
        for (name, report) in &reports {
            let nvm = NvmReport::from_state(report, &model);
            let wear = nvm
                .max_cell_wear_fraction
                .map(|w| format!("{:.4}% of endurance", 100.0 * w))
                .unwrap_or_else(|| "(per-cell tracking not enabled)".into());
            println!(
                "  {name:<40} write energy {:>10.1} µJ   write share {:>5.1}%   hottest cell {wear}",
                nvm.write_energy_nj / 1e3,
                100.0 * nvm.write_energy_fraction(),
            );
        }
        println!();
    }
}
