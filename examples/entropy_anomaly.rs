//! Entropy-based anomaly detection over traffic windows.
//!
//! A sudden drop in the entropy of the destination distribution is a classic signal of
//! a DDoS-like event (all traffic concentrating on one target).  We process a sequence
//! of traffic windows — normal, attack, normal — with the few-state-changes entropy
//! estimator and flag windows whose estimated entropy collapses.
//!
//! Run with: `cargo run --release --example entropy_anomaly`

use few_state_changes::algorithms::EntropyFewState;
use few_state_changes::state::{EntropyEstimator, StreamAlgorithm};
use few_state_changes::streamgen::planted::{planted_stream, PlantedSpec};
use few_state_changes::streamgen::zipf::zipf_stream;
use few_state_changes::streamgen::FrequencyVector;

fn main() {
    let n = 1 << 13;
    let window = 8 * n;

    // Three traffic windows: normal, attack (one destination dominates), normal.
    let windows: Vec<(&str, Vec<u64>)> = vec![
        ("window 1 (normal)", zipf_stream(n, window, 1.0, 1)),
        ("window 2 (attack)", {
            planted_stream(&PlantedSpec {
                universe: n,
                background_updates: window / 8,
                planted: vec![(7 * window / 8) as u64],
                seed: 2,
            })
        }),
        ("window 3 (normal)", zipf_stream(n, window, 1.0, 3)),
    ];

    let mut baseline_entropy = None;
    for (label, stream) in &windows {
        let truth = FrequencyVector::from_stream(stream).entropy_bits();
        let mut est = EntropyFewState::new(0.2, n, stream.len(), 11);
        est.process_stream(stream);
        let estimate = est.estimate_entropy();
        let report = est.report();

        let baseline = *baseline_entropy.get_or_insert(estimate);
        let alarm = estimate < 0.5 * baseline;
        println!("{label}");
        println!("  estimated entropy : {estimate:.2} bits (exact {truth:.2})");
        println!(
            "  state changes     : {} of {} packets",
            report.state_changes, report.epochs
        );
        println!(
            "  anomaly alarm     : {}\n",
            if alarm { "RAISED" } else { "quiet" }
        );
    }
}
