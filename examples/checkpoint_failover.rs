//! Checkpoint/failover walkthrough: a sharded engine ingests traffic, checkpoints
//! itself, "crashes", and a fresh engine restores from the checkpoint and finishes
//! the stream — producing exactly the answers of an uninterrupted run.
//!
//! This is the operational payoff of the paper's object: a summary whose state
//! changes are scarce is also a summary whose durable footprint is tiny, so
//! persisting it at a cadence costs almost nothing compared to the stream.
//!
//! Run with: `cargo run --release --example checkpoint_failover`

use few_state_changes::baselines::CountMin;
use few_state_changes::engine::{Engine, EngineConfig, Routing};
use few_state_changes::state::{Query, StateTracker, TrackerKind};
use few_state_changes::streamgen::zipf::zipf_stream;

fn make_engine(shards: usize) -> Engine<CountMin> {
    // Shards share dimensions and hash seed, so their merge is *exact*: the sharded
    // engine answers queries identically to a single sketch over the whole stream.
    let config = EngineConfig {
        shards,
        routing: Routing::RoundRobin,
        tracker: TrackerKind::Full,
        ..EngineConfig::default()
    };
    Engine::new(config, |_| {
        CountMin::with_tracker(&StateTracker::of_kind(config.tracker), 1 << 11, 4, 2024)
    })
}

fn main() {
    let n = 1 << 14;
    let m = 8 * n;
    let stream = zipf_stream(n, m, 1.2, 7);
    let (before_crash, after_crash) = stream.split_at(2 * m / 3);

    // --- the reference: one engine that never crashes -----------------------------
    let mut uninterrupted = make_engine(4);
    uninterrupted.ingest(&stream);

    // --- the production run: ingest, checkpoint, crash ----------------------------
    let mut engine = make_engine(4);
    engine.ingest(before_crash);
    let checkpoint = engine.checkpoint();
    println!(
        "checkpointed after {} updates: {} bytes ({} shards, {} state changes)",
        engine.ingested(),
        checkpoint.len(),
        engine.shards(),
        engine.report().state_changes,
    );
    drop(engine); // simulated crash: the process and all in-memory state are gone

    // --- failover: a fresh shard restores and takes over --------------------------
    let mut recovered = Engine::<CountMin>::restore(&checkpoint).expect("restore checkpoint");
    println!(
        "restored a fresh engine at update {} — resuming ingest",
        recovered.ingested()
    );
    recovered.ingest(after_crash);

    // --- the merged answers match the uninterrupted run ---------------------------
    let probes: Vec<Query> = (0..256u64).map(Query::Point).collect();
    let recovered_answers = recovered.query_many(&probes).expect("merged view");
    let reference_answers = uninterrupted.query_many(&probes).expect("merged view");
    let mut max_diff = 0.0f64;
    for (a, b) in recovered_answers.iter().zip(&reference_answers) {
        let (a, b) = (a.scalar().unwrap(), b.scalar().unwrap());
        max_diff = max_diff.max((a - b).abs());
    }
    println!("max |recovered − uninterrupted| over 256 point queries: {max_diff}");
    assert_eq!(max_diff, 0.0, "failover must be observably lossless");

    // Accounting survived too: the recovered engine's books describe the whole
    // stream, not just the post-crash suffix.
    assert_eq!(recovered.report(), uninterrupted.report());
    println!(
        "accounting after failover: {} epochs, {} state changes — identical to the \
         uninterrupted run",
        recovered.report().epochs,
        recovered.report().state_changes,
    );
}
